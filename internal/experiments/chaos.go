package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/accel"
	"nvwa/internal/coordinator"
	"nvwa/internal/fault"
	"nvwa/internal/obs"
	"nvwa/internal/sim"
)

// ChaosConfig parameterises the chaos harness: how many seeded fault
// schedules to sweep, which Hits Allocator strategies to sweep them
// across, the fault-mix template each seed instantiates, and how much
// slack the watchdog grants a degraded run over its fault-free
// baseline before diagnosing a hang.
type ChaosConfig struct {
	// Seeds is the number of generated fault schedules per strategy.
	Seeds int
	// Strategies lists the allocator variants under test (default: all
	// four — Grouped, Exclusive, Shared, FIFO).
	Strategies []coordinator.Strategy
	// Template is the fault mix each schedule draws from; its Seed
	// field is overridden per row, and a zero Horizon auto-scales to
	// each strategy's fault-free makespan (so faults actually land
	// inside the run regardless of workload size). Zero value means
	// fault.DefaultSpec with an auto-scaled horizon.
	Template fault.Spec
	// BudgetFactor scales each strategy's fault-free makespan into the
	// watchdog cycle budget (default 20x). A degraded run exceeding the
	// budget is a diagnosed failure, never a hang.
	BudgetFactor int64
}

// DefaultChaosConfig returns the smoke-level sweep: four seeds across
// all four allocator strategies under the default mixed-fault template.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seeds: 4,
		Strategies: []coordinator.Strategy{
			coordinator.Grouped, coordinator.Exclusive,
			coordinator.Shared, coordinator.FIFO,
		},
		Template:     chaosTemplate(0),
		BudgetFactor: 20,
	}
}

// chaosTemplate is fault.DefaultSpec with the horizon left open for
// per-strategy auto-scaling.
func chaosTemplate(seed int64) fault.Spec {
	sp := fault.DefaultSpec(seed)
	sp.Horizon = 0
	return sp
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
	if len(c.Strategies) == 0 {
		c.Strategies = DefaultChaosConfig().Strategies
	}
	zero := fault.Spec{}
	if c.Template == zero {
		c.Template = chaosTemplate(0)
	}
	if c.BudgetFactor <= 0 {
		c.BudgetFactor = 20
	}
	return c
}

// ChaosRow is one seeded degraded run.
type ChaosRow struct {
	// Strategy is the Hits Allocator variant under test.
	Strategy coordinator.Strategy
	// Seed generated the fault schedule.
	Seed int64
	// PlanEvents is the schedule length.
	PlanEvents int
	// BaselineCycles is the strategy's fault-free makespan; Budget is
	// the watchdog allowance derived from it; Cycles is the degraded
	// makespan.
	BaselineCycles, Budget, Cycles int64
	// Faults is the run's fault-injection accounting.
	Faults fault.Summary
	// Violation is the first scheduler-invariant or conservation
	// violation, empty when the run was sound.
	Violation string
	// RunErr is the watchdog diagnosis, empty when the run terminated
	// inside its budget.
	RunErr string
}

// OK reports whether the row terminated soundly.
func (r ChaosRow) OK() bool { return r.Violation == "" && r.RunErr == "" }

// ChaosResult is the chaos sweep outcome: every row is a seeded fault
// schedule run to completion under watchdog guard with the scheduler
// invariant checker attached.
type ChaosResult struct {
	Rows []ChaosRow
}

// Err returns the first failing row's diagnosis, or nil when every
// seeded schedule terminated with conservation intact.
func (r ChaosResult) Err() error {
	for _, row := range r.Rows {
		if row.RunErr != "" {
			return fmt.Errorf("chaos: alloc=%s seed=%d: watchdog: %s", row.Strategy, row.Seed, row.RunErr)
		}
		if row.Violation != "" {
			return fmt.Errorf("chaos: alloc=%s seed=%d: %s", row.Strategy, row.Seed, row.Violation)
		}
	}
	return nil
}

// Chaos sweeps seeded fault schedules across allocator strategies on
// the workload. Each row builds a private system with the schedule's
// fault plan, the invariant checker, and a watchdog budgeted from the
// strategy's fault-free baseline, then records the degradation
// accounting. Rows fan across the runner's worker pool; collection
// order is program order, so output is deterministic for any Runner.
func Chaos(env *Env, cfg ChaosConfig, r *Runner) ChaosResult {
	cfg = cfg.withDefaults()

	// Fault-free baselines, one per strategy, set the watchdog budgets.
	baselines := make([]int64, len(cfg.Strategies))
	r.Map(len(cfg.Strategies), func(i int) {
		o := env.NvWaOptions()
		o.AllocStrategy = cfg.Strategies[i]
		baselines[i] = env.runWith(o, r).Cycles
	})

	res := ChaosResult{Rows: make([]ChaosRow, len(cfg.Strategies)*cfg.Seeds)}
	r.Map(len(res.Rows), func(i int) {
		si, ki := i/cfg.Seeds, i%cfg.Seeds
		spec := cfg.Template
		spec.Seed = cfg.Template.Seed + int64(ki)
		res.Rows[i] = chaosRun(env, cfg.Strategies[si], spec, baselines[si], cfg.BudgetFactor, r)
	})
	return res
}

// chaosRun executes one seeded degraded run and audits it. Under a
// sharded runner the fault schedule is generated over the aggregate
// machine shape (S×NumSUs, S×TotalEUs) and partitioned per shard with
// unit-id remapping inside the scale-out engine, so chaos sweeps
// compose with sharding; the merged fault ledger is audited with the
// same terminal-conservation check.
func chaosRun(env *Env, strat coordinator.Strategy, spec fault.Spec, baseline, factor int64, r *Runner) ChaosRow {
	o := env.NvWaOptions()
	o.AllocStrategy = strat
	if spec.Horizon <= 0 {
		// Auto-scale: draw fault cycles from the strategy's fault-free
		// makespan so the schedule exercises the run instead of landing
		// after it.
		spec.Horizon = max(baseline, 1000)
	}
	shards := r.Shards()
	plan := spec.Generate(o.Config.NumSUs*shards, o.Config.TotalEUs()*shards)
	budget := baseline * factor
	if budget < 1_000_000 {
		budget = 1_000_000
	}
	ob := obs.NewInvariantsOnly()
	o.Obs = ob
	o.Faults = plan
	o.Watchdog = &sim.Watchdog{MaxCycles: budget}

	row := ChaosRow{
		Strategy:       strat,
		Seed:           spec.Seed,
		PlanEvents:     plan.Len(),
		BaselineCycles: baseline,
		Budget:         budget,
	}
	// Rows already fan across the runner's worker pool, so each row's
	// shards run on a single worker; the merged Report is invariant to
	// that choice.
	sys, err := accel.NewSharded(env.Aligner, accel.ShardedOptions{
		Options: o, Shards: shards, Policy: r.ShardPolicy(), Workers: 1,
	})
	if err != nil {
		row.RunErr = err.Error()
		return row
	}
	rep, runErr := sys.RunChecked(env.Reads)
	row.Cycles = rep.Cycles
	if rep.Faults != nil {
		row.Faults = *rep.Faults
	}
	if runErr != nil {
		row.RunErr = runErr.Error()
		return row
	}
	if err := ob.Inv.Err(); err != nil {
		row.Violation = err.Error()
		return row
	}
	// Terminal conservation over the fault ledger: every hit pulled
	// back from a failed EU was either re-dispatched to a healthy unit
	// or dead-lettered after the retry budget — nothing in between.
	if f := row.Faults; f.Requeued != f.Retried+f.DeadLettered {
		row.Violation = fmt.Sprintf(
			"fault ledger leak: requeued %d != retried %d + dead-lettered %d",
			f.Requeued, f.Retried, f.DeadLettered)
	}
	return row
}

// Format renders the sweep table.
func (r ChaosResult) Format() string {
	var b strings.Builder
	b.WriteString("Chaos — seeded fault schedules across Hits Allocator strategies\n")
	fmt.Fprintf(&b, "  %-10s %5s %6s %9s %9s %6s %4s/%-4s %4s %4s %4s %4s  %s\n",
		"alloc", "seed", "events", "base-cyc", "cycles", "slow",
		"inj", "abs", "rq", "rt", "dl", "shed", "status")
	for _, row := range r.Rows {
		slow := 0.0
		if row.BaselineCycles > 0 {
			slow = float64(row.Cycles) / float64(row.BaselineCycles)
		}
		status := "ok"
		if row.RunErr != "" {
			status = "watchdog: " + row.RunErr
		} else if row.Violation != "" {
			status = "violation: " + row.Violation
		}
		f := row.Faults
		fmt.Fprintf(&b, "  %-10s %5d %6d %9d %9d %5.2fx %4d/%-4d %4d %4d %4d %4d  %s\n",
			row.Strategy, row.Seed, row.PlanEvents, row.BaselineCycles, row.Cycles,
			slow, f.Injected, f.Absorbed, f.Requeued, f.Retried, f.DeadLettered, f.Shed, status)
	}
	n := 0
	for _, row := range r.Rows {
		if row.OK() {
			n++
		}
	}
	fmt.Fprintf(&b, "  %d/%d runs terminated with conservation intact\n", n, len(r.Rows))
	return b.String()
}
