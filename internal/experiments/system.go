package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/accel"
	"nvwa/internal/baselines"
	"nvwa/internal/coordinator"
	"nvwa/internal/obs"
)

// Fig11Row is one system of the throughput comparison.
type Fig11Row struct {
	Name string
	// Cycles and ThroughputKReads are simulated (zero for
	// paper-reported rows).
	Cycles           int64
	ThroughputKReads float64
	// SpeedupVsBaseline is relative to the simulated SUs+EUs system.
	SpeedupVsBaseline float64
	// Simulated distinguishes measured rows from paper-quoted ones.
	Simulated bool
}

// Fig11Result is the Fig. 11 comparison plus the ablation study.
type Fig11Result struct {
	Rows []Fig11Row
	// Ablations maps each mechanism to its cumulative-build-up factor:
	// the speedup gained when it is added on top of the previously
	// enabled mechanisms, in the paper's order HUS -> OCRA -> HA
	// (paper: 3.32x, 1.73x, 2.38x, multiplying to the 13.6x total).
	Ablations map[string]float64
	// AddOne maps each mechanism to its speedup when added alone to
	// the SUs+EUs baseline.
	AddOne map[string]float64
	// TotalSpeedup is full NvWa over SUs+EUs (paper: ~13.6x).
	TotalSpeedup float64
	// SoftwareKReads is the measured multi-threaded software pipeline
	// throughput on this host (the CPU-baseline stand-in).
	SoftwareKReads float64
	// CPUSpeedup is simulated NvWa over the measured software baseline
	// (paper: 493x over 16-thread BWA-MEM).
	CPUSpeedup float64
}

// Fig11 runs the simulated comparison and ablations on the workload.
func Fig11(env *Env) Fig11Result { return Fig11With(env, Serial()) }

// Fig11With is Fig11 under an explicit execution policy: the six
// independent accelerator configurations (baseline, the cumulative
// build-up, the add-one-in ablations, full NvWa) fan across the
// runner's worker pool, and memo replay removes the redundant
// per-config functional recomputation. Output is byte-identical to
// the serial policy.
func Fig11With(env *Env, r *Runner) Fig11Result {
	res := Fig11Result{Ablations: map[string]float64{}, AddOne: map[string]float64{}}

	// The five ablation configs plus full NvWa are independent systems
	// over the same workload — exactly the paper's Fig. 11 columns.
	withHUS := env.BaselineOptions()
	withHUS.Config.EUClasses = env.Classes
	withOCRA := withHUS
	withOCRA.SeedStrategy = accel.OneCycle
	ocraOnly := env.BaselineOptions()
	ocraOnly.SeedStrategy = accel.OneCycle
	haOnly := env.BaselineOptions()
	haOnly.AllocStrategy = coordinator.Grouped

	configs := []accel.Options{
		env.BaselineOptions(), // base
		env.NvWaOptions(),     // full
		withHUS,
		withOCRA,
		ocraOnly,
		haOnly,
	}
	reps := make([]*accel.Report, len(configs))
	r.Map(len(configs), func(i int) { reps[i] = env.runWith(configs[i], r) })
	base, full, hus, ocra := reps[0], reps[1], reps[2], reps[3]

	res.TotalSpeedup = float64(base.Cycles) / float64(full.Cycles)

	// Cumulative build-up in the paper's order (the three reported
	// factors multiply to the total by construction):
	// SUs+EUs -> +HUS -> +HUS+OCRA -> +HUS+OCRA+HA (= NvWa).
	res.Ablations["Hybrid Units Strategy"] = float64(base.Cycles) / float64(hus.Cycles)
	res.Ablations["One-Cycle Read Allocator"] = float64(hus.Cycles) / float64(ocra.Cycles)
	res.Ablations["Hits Allocator"] = float64(ocra.Cycles) / float64(full.Cycles)

	// Add-one-in: enable one mechanism alone on top of the baseline.
	res.AddOne["Hybrid Units Strategy"] = float64(base.Cycles) / float64(hus.Cycles)
	res.AddOne["One-Cycle Read Allocator"] = float64(base.Cycles) / float64(reps[4].Cycles)
	res.AddOne["Hits Allocator"] = float64(base.Cycles) / float64(reps[5].Cycles)

	swTput := env.softwareRPS(r)
	res.SoftwareKReads = swTput / 1000
	if swTput > 0 {
		res.CPUSpeedup = full.ThroughputReadsPerSec / swTput
	}

	res.Rows = append(res.Rows,
		Fig11Row{Name: "SUs+EUs (simulated)", Cycles: base.Cycles, ThroughputKReads: base.ThroughputReadsPerSec / 1000, SpeedupVsBaseline: 1, Simulated: true},
		Fig11Row{Name: "SUs+EUs+HUS (simulated)", Cycles: hus.Cycles, ThroughputKReads: hus.ThroughputReadsPerSec / 1000, SpeedupVsBaseline: float64(base.Cycles) / float64(hus.Cycles), Simulated: true},
		Fig11Row{Name: "SUs+EUs+HUS+OCRA (simulated)", Cycles: ocra.Cycles, ThroughputKReads: ocra.ThroughputReadsPerSec / 1000, SpeedupVsBaseline: float64(base.Cycles) / float64(ocra.Cycles), Simulated: true},
		Fig11Row{Name: "NvWa (simulated)", Cycles: full.Cycles, ThroughputKReads: full.ThroughputReadsPerSec / 1000, SpeedupVsBaseline: res.TotalSpeedup, Simulated: true},
	)
	for _, p := range baselines.Platforms() {
		res.Rows = append(res.Rows, Fig11Row{
			Name:             p.Name + " (paper)",
			ThroughputKReads: p.ThroughputKReads,
		})
	}
	return res
}

// Format renders the comparison table.
func (r Fig11Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — end-to-end throughput comparison\n")
	for _, row := range r.Rows {
		mark := "reported"
		if row.Simulated {
			mark = "simulated"
		}
		fmt.Fprintf(&b, "  %-32s %10.0f Kreads/s", row.Name, row.ThroughputKReads)
		if row.Simulated {
			fmt.Fprintf(&b, "  %6.2fx vs SUs+EUs", row.SpeedupVsBaseline)
		}
		fmt.Fprintf(&b, "  [%s]\n", mark)
	}
	fmt.Fprintf(&b, "  per-mechanism speedups (paper: HUS 3.32x, OCRA 1.73x, HA 2.38x):\n")
	for _, k := range []string{"Hybrid Units Strategy", "One-Cycle Read Allocator", "Hits Allocator"} {
		fmt.Fprintf(&b, "    %-26s cumulative %.2fx, add-one-in %.2fx\n", k, r.Ablations[k], r.AddOne[k])
	}
	fmt.Fprintf(&b, "  total NvWa / SUs+EUs: %.2fx (paper: 13.64x)\n", r.TotalSpeedup)
	fmt.Fprintf(&b, "  measured software pipeline: %.1f Kreads/s; NvWa speedup %.0fx (paper: 493x vs 16-thread BWA-MEM)\n",
		r.SoftwareKReads, r.CPUSpeedup)
	return b.String()
}

// Fig12Result is the resource-utilization comparison.
type Fig12Result struct {
	NvWa, Baseline *accel.Report
}

// Fig12 runs NvWa and SUs+EUs on the workload (the paper uses 4000
// reads for this figure) and reports utilizations, time series, and
// assignment accuracy.
func Fig12(env *Env) Fig12Result {
	return Fig12Result{NvWa: env.RunNvWa(), Baseline: env.RunBaseline()}
}

// Fig12Observed is Fig12 with an observer attached to the NvWa run, so
// the CLI can export the timeline and metrics snapshot behind the
// figure (-trace/-metrics). Observation does not perturb the
// simulation: the result is identical to Fig12's.
func Fig12Observed(env *Env, ob *obs.Observer) Fig12Result {
	return Fig12Result{NvWa: env.RunNvWaObserved(ob), Baseline: env.RunBaseline()}
}

// Format renders utilization summaries, series excerpts, and the
// per-class optimal-assignment table.
func (r Fig12Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — resource utilization (NvWa vs SUs+EUs)\n")
	fmt.Fprintf(&b, "  SU utilization:  NvWa %.1f%% (paper 97.1%%)   SUs+EUs %.1f%% (paper 23.5%%)\n",
		100*r.NvWa.SUUtil, 100*r.Baseline.SUUtil)
	fmt.Fprintf(&b, "  EU utilization:  NvWa %.1f%% (paper 85.4%%)   SUs+EUs %.1f%% (paper 32.3%%)\n",
		100*r.NvWa.EUUtil, 100*r.Baseline.EUUtil)
	fmt.Fprintf(&b, "  optimal-unit assignment: NvWa %.1f%% vs SUs+EUs %.1f%% (paper: 87.7/64.1/56.9/87.6%% per class vs 14.5%%)\n",
		100*r.NvWa.AllocStats.OptimalFraction(), 100*r.Baseline.AllocStats.OptimalFraction())
	for ci, u := range r.NvWa.PerClassEUUtil {
		fmt.Fprintf(&b, "    EU class %d utilization: %.1f%%\n", ci, 100*u)
	}
	st := r.NvWa.AllocStats
	for i := range st.PerClassTotal {
		if st.PerClassTotal[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "    class %d: %.1f%% optimal (%d hits)\n",
			i, 100*float64(st.PerClassOptimal[i])/float64(st.PerClassTotal[i]), st.PerClassTotal[i])
	}
	b.WriteString("  SU utilization series (NvWa):     " + sparkline(r.NvWa.SUSeries) + "\n")
	b.WriteString("  SU utilization series (SUs+EUs):  " + sparkline(r.Baseline.SUSeries) + "\n")
	b.WriteString("  EU utilization series (NvWa):     " + sparkline(r.NvWa.EUSeries) + "\n")
	b.WriteString("  EU utilization series (SUs+EUs):  " + sparkline(r.Baseline.EUSeries) + "\n")
	return b.String()
}

// sparkline renders a utilization series as text bars.
func sparkline(xs []float64) string {
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	step := 1
	if len(xs) > 60 {
		step = len(xs) / 60
	}
	for i := 0; i < len(xs); i += step {
		v := xs[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		b.WriteRune(glyphs[int(v*float64(len(glyphs)-1)+0.5)])
	}
	return b.String()
}
