package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/align"
	"nvwa/internal/pipeline"
)

// BandRow is one initial-band policy of the SeedEx discussion.
type BandRow struct {
	Policy string
	// Retries is the total number of band attempts across all hits
	// (1 per hit is the minimum — no speculation failures).
	Retries int
	// Hits is the number of extensions performed.
	Hits int
	// CellWork is the summed banded DP area (band x reference rows),
	// the iso-area cost of the policy.
	CellWork int64
}

// BandPressure quantifies the paper's Sec. IV-C SeedEx observation:
// scaling the speculative band to the hit's length reduces the
// speculation-and-test retries compared to one fixed band for all
// hits. Three policies run the same extensions: a narrow fixed band,
// a wide fixed band, and a hit-length-scaled band.
func BandPressure(env *Env, nReads int) []BandRow {
	if nReads > len(env.Reads) {
		nReads = len(env.Reads)
	}
	sc := env.Aligner.Options().Scoring
	type task struct {
		ref, query []byte
		initScore  int
		hitLen     int
	}
	var tasks []task
	for i := 0; i < nReads; i++ {
		hits, _ := env.Aligner.SeedAndChain(i, env.Reads[i])
		for _, h := range hits {
			oriented := pipeline.Orient(env.Reads[i], h.Rev)
			_, lq, rr, rq := env.Aligner.ExtendDims(h)
			_ = lq
			if rq == 0 || rr == 0 {
				continue
			}
			seedRefEnd := h.RefPos + h.SeedLen()
			tk := task{
				ref:       env.Aligner.Ref()[seedRefEnd : seedRefEnd+rr],
				query:     oriented[h.ReadEnd : h.ReadEnd+rq],
				initScore: h.SeedScore,
				hitLen:    h.SchedLen(),
			}
			// Speculation targets viable extensions: hopeless candidates
			// are killed by the z-drop heuristic before the banded fill
			// and never exercise the speculate-and-test loop.
			full, _, _, _ := align.Extend(tk.ref, tk.query, sc, tk.initScore, -1)
			if full-tk.initScore < len(tk.query)/2 {
				continue
			}
			tasks = append(tasks, tk)
		}
	}

	policies := []struct {
		name string
		band func(hitLen int) int
	}{
		{"fixed narrow (band 2)", func(int) int { return 2 }},
		{"fixed wide (band 32)", func(int) int { return 32 }},
		{"scaled to hit length (len/8, min 2)", func(l int) int {
			b := l / 8
			if b < 2 {
				b = 2
			}
			return b
		}},
	}
	var rows []BandRow
	for _, p := range policies {
		row := BandRow{Policy: p.name, Hits: len(tasks)}
		for _, tk := range tasks {
			_, _, _, bands := align.SpeculativeExtend(tk.ref, tk.query, sc, tk.initScore, p.band(tk.hitLen))
			row.Retries += len(bands)
			for _, b := range bands {
				row.CellWork += int64((2*b + 1)) * int64(len(tk.ref))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatBandPressure renders the comparison.
func FormatBandPressure(rows []BandRow) string {
	var b strings.Builder
	b.WriteString("Sec. IV-C — SeedEx band speculation pressure by initial-band policy\n")
	for _, r := range rows {
		avg := float64(r.Retries) / float64(max1(r.Hits))
		fmt.Fprintf(&b, "  %-38s %d extensions, %.2f attempts/hit, %d banded cells\n",
			r.Policy, r.Hits, avg, r.CellWork)
	}
	return b.String()
}

func max1(n int) int {
	if n == 0 {
		return 1
	}
	return n
}
