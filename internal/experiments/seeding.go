package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/fmindex"
	"nvwa/internal/hashindex"
)

// SeedingTrafficResult compares the memory traffic of the two seeding
// algorithms the paper discusses (Sec. II-B): the FM-index search our
// SUs implement (LFMapBit-style) and the Darwin-style hash-based
// search whose DRAM cost is 2+P accesses per k-mer lookup (paper
// footnote 3).
type SeedingTrafficResult struct {
	Reads int
	// FM-index traffic per read.
	FMOccAccesses, FMSALookups float64
	// Hash traffic per read (pointer-table + position-table accesses).
	HashPointer, HashPosition float64
	// HashK is the k-mer size used.
	HashK int
}

// SeedingTraffic measures both algorithms on the workload's reads.
func SeedingTraffic(env *Env, n, hashK int) (SeedingTrafficResult, error) {
	if n > len(env.Reads) {
		n = len(env.Reads)
	}
	res := SeedingTrafficResult{Reads: n, HashK: hashK}

	hidx, err := hashindex.New(env.Ref.Seq, hashK)
	if err != nil {
		return res, err
	}
	opts := env.Aligner.Options()
	var fmTotal fmindex.Stats
	var hashTotal hashindex.Stats
	for i := 0; i < n; i++ {
		var st fmindex.Stats
		env.Aligner.Seeder().Seeds(env.Reads[i], opts.MinSeedLen, opts.MaxOcc, opts.MaxMemIntv, &st)
		fmTotal.Add(st)
		hidx.Seeds(env.Reads[i], hashK, 64, &hashTotal)
	}
	res.FMOccAccesses = float64(fmTotal.OccAccesses) / float64(n)
	res.FMSALookups = float64(fmTotal.SALookups) / float64(n)
	res.HashPointer = float64(hashTotal.PointerAccesses) / float64(n)
	res.HashPosition = float64(hashTotal.PositionAccesses) / float64(n)
	return res, nil
}

// Format renders the comparison.
func (r SeedingTrafficResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seeding traffic per read (%d reads) — FM-index SUs vs Darwin hash (2+P model)\n", r.Reads)
	fmt.Fprintf(&b, "  FM-index:  %.0f occ-table block reads (SU SRAM), %.1f SA lookups (HBM)\n", r.FMOccAccesses, r.FMSALookups)
	fmt.Fprintf(&b, "  hash k=%d: %.0f pointer-table + %.0f position-table DRAM accesses\n", r.HashK, r.HashPointer, r.HashPosition)
	return b.String()
}
