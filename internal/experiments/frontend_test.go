package experiments

import (
	"strings"
	"testing"
)

func TestFrontEnds(t *testing.T) {
	env := getEnv(t)
	rows, err := FrontEnds(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputKReads <= 0 || r.HitsPerRead <= 0 {
			t.Fatalf("front end %q produced nothing", r.Name)
		}
		// Both front ends must align the vast majority of reads.
		if r.Aligned < len(env.Reads)*80/100 {
			t.Errorf("%s aligned only %d/%d", r.Name, r.Aligned, len(env.Reads))
		}
	}
	if !strings.Contains(FormatFrontEnds(rows), "unified interface") {
		t.Error("format incomplete")
	}
}
