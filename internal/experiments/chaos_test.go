package experiments

import (
	"reflect"
	"strings"
	"testing"

	"nvwa/internal/accel"
	"nvwa/internal/coordinator"
	"nvwa/internal/fault"
	"nvwa/internal/obs"
	"nvwa/internal/sim"
)

// chaosStrategies is the full allocator matrix the chaos properties
// quantify over.
var chaosStrategies = []coordinator.Strategy{
	coordinator.Grouped, coordinator.Exclusive,
	coordinator.Shared, coordinator.FIFO,
}

// TestChaosTerminatesWithConservation is the tentpole property: every
// seeded fault schedule, across all four Hits Allocator strategies,
// terminates inside its watchdog budget with the scheduler invariants
// and the fault-ledger conservation intact.
func TestChaosTerminatesWithConservation(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	cfg := DefaultChaosConfig()
	cfg.Seeds = 2
	cfg.Template.Seed = 7
	res := Chaos(env, cfg, NewRunner(0))
	if err := res.Err(); err != nil {
		t.Fatalf("chaos sweep failed: %v\n%s", err, res.Format())
	}
	if want := len(chaosStrategies) * cfg.Seeds; len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	seen := map[coordinator.Strategy]bool{}
	injected := 0
	for _, row := range res.Rows {
		seen[row.Strategy] = true
		if row.Cycles <= 0 || row.Cycles > row.Budget {
			t.Errorf("alloc=%s seed=%d: cycles %d outside (0, budget %d]",
				row.Strategy, row.Seed, row.Cycles, row.Budget)
		}
		if row.PlanEvents == 0 {
			t.Errorf("alloc=%s seed=%d: empty generated plan", row.Strategy, row.Seed)
		}
		if f := row.Faults; f.Requeued != f.Retried+f.DeadLettered {
			t.Errorf("alloc=%s seed=%d: ledger leak: rq %d != rt %d + dl %d",
				row.Strategy, row.Seed, f.Requeued, f.Retried, f.DeadLettered)
		}
		injected += row.Faults.Injected
	}
	for _, st := range chaosStrategies {
		if !seen[st] {
			t.Errorf("strategy %s missing from sweep", st)
		}
	}
	if injected == 0 {
		t.Error("no faults injected across the whole sweep — harness inert")
	}
	out := res.Format()
	for _, want := range []string{"grouped", "fifo", "conservation intact"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// TestChaosDeterministicAcrossRunners pins the sweep's determinism:
// the serial policy and the parallel pool produce identical rows.
func TestChaosDeterministicAcrossRunners(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	cfg := DefaultChaosConfig()
	cfg.Seeds = 1
	cfg.Strategies = []coordinator.Strategy{coordinator.Grouped, coordinator.FIFO}
	cfg.Template.Seed = 11
	serial := Chaos(env, cfg, Serial())
	parallel := Chaos(env, cfg, NewRunner(0))
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("chaos rows differ between runners:\nserial:\n%s\nparallel:\n%s",
			serial.Format(), parallel.Format())
	}
}

// TestChaosNilPlanByteIdentical is the zero-overhead differential,
// quantified over every allocator strategy: a system carrying an empty
// fault plan and a watchdog produces a Report byte-identical to the
// plain system's, except for the (empty) FaultSummary itself.
func TestChaosNilPlanByteIdentical(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	for _, st := range chaosStrategies {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			t.Parallel()
			o := env.NvWaOptions()
			o.AllocStrategy = st
			base := mustRun(t, env, o)

			o.Faults = &fault.Plan{}
			o.Watchdog = &sim.Watchdog{MaxCycles: 1 << 40}
			guarded := mustRun(t, env, o)

			if guarded.Faults == nil || guarded.Faults.Planned != 0 {
				t.Fatalf("empty plan summary wrong: %+v", guarded.Faults)
			}
			if base.Faults != nil {
				t.Fatalf("plain run unexpectedly carries a fault summary")
			}
			guarded.Faults = nil
			if !reflect.DeepEqual(base, guarded) {
				t.Errorf("alloc=%s: empty fault plan perturbed the report", st)
			}
		})
	}
}

func mustRun(t *testing.T, env *Env, o accel.Options) *accel.Report {
	t.Helper()
	ob := obs.NewInvariantsOnly()
	o.Obs = ob
	sys, err := accel.New(env.Aligner, o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunChecked(env.Reads)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if err := ob.Inv.Err(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	return rep
}
