package experiments

import (
	"reflect"
	"testing"
)

// The golden determinism suite is the contract the parallel experiment
// engine ships under: for the same workload, (1) re-running an
// experiment serially reproduces the formatted output byte for byte,
// and (2) the parallel runner — worker-pool fan-out plus memo replay —
// reproduces the serial bytes and result structs exactly. Wall-clock
// software-throughput measurement, the one legitimately nondeterministic
// input, is pinned via WithSoftwareRPS.

const goldenRPS = 1e6

// goldenSeeds drives the table: the shared test env seed plus extra
// fresh-workload seeds that only run without -short.
func goldenSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{42}
	}
	return []int64{42, 7}
}

// goldenEnv returns the workload for a seed, reusing the shared test
// env for seed 42.
func goldenEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	if seed == 42 {
		return getEnv(t)
	}
	return NewEnv(60000, 800, seed)
}

func TestGoldenFig11SerialAndParallelIdentical(t *testing.T) {
	t.Parallel()
	for _, seed := range goldenSeeds(t) {
		ser := Serial().WithSoftwareRPS(goldenRPS)
		par := NewRunner(4).WithSoftwareRPS(goldenRPS)
		env := goldenEnv(t, seed)

		first := Fig11With(env, ser)
		again := Fig11With(env, ser)
		if first.Format() != again.Format() {
			t.Fatalf("seed %d: serial Fig11 is not reproducible", seed)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("seed %d: serial Fig11 structs differ between runs", seed)
		}

		parallel := Fig11With(env, par)
		if got, want := parallel.Format(), first.Format(); got != want {
			t.Fatalf("seed %d: parallel Fig11 output diverges from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, want, got)
		}
		if !reflect.DeepEqual(first, parallel) {
			t.Fatalf("seed %d: parallel Fig11 structs diverge from serial", seed)
		}
	}
}

func TestGoldenFig13aSerialAndParallelIdentical(t *testing.T) {
	t.Parallel()
	depths := []int{16, 64, 256, 1024}
	for _, seed := range goldenSeeds(t) {
		ser := Serial().WithSoftwareRPS(goldenRPS)
		par := NewRunner(4).WithSoftwareRPS(goldenRPS)
		env := goldenEnv(t, seed)

		first := Fig13aWith(env, depths, ser)
		again := Fig13aWith(env, depths, ser)
		if FormatFig13a(first) != FormatFig13a(again) {
			t.Fatalf("seed %d: serial Fig13a is not reproducible", seed)
		}
		parallel := Fig13aWith(env, depths, par)
		if got, want := FormatFig13a(parallel), FormatFig13a(first); got != want {
			t.Fatalf("seed %d: parallel Fig13a output diverges from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, want, got)
		}
		if !reflect.DeepEqual(first, parallel) {
			t.Fatalf("seed %d: parallel Fig13a rows diverge from serial", seed)
		}
	}
}

func TestGoldenFig14SerialAndParallelIdentical(t *testing.T) {
	t.Parallel()
	refLen, nReads := 30000, 120
	if testing.Short() {
		refLen, nReads = 20000, 80
	}
	for _, seed := range goldenSeeds(t) {
		ser := Serial().WithSoftwareRPS(goldenRPS)
		par := NewRunner(4).WithSoftwareRPS(goldenRPS)

		first := Fig14With(refLen, nReads, seed, ser)
		parallel := Fig14With(refLen, nReads, seed, par)
		if got, want := FormatFig14(parallel), FormatFig14(first); got != want {
			t.Fatalf("seed %d: parallel Fig14 output diverges from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, want, got)
		}
		if !reflect.DeepEqual(first, parallel) {
			t.Fatalf("seed %d: parallel Fig14 rows diverge from serial", seed)
		}
		if testing.Short() {
			continue
		}
		// Fresh serial rerun (rebuilding every per-row Env) must also
		// reproduce the bytes: workload synthesis is seed-deterministic.
		again := Fig14With(refLen, nReads, seed, ser)
		if FormatFig14(again) != FormatFig14(first) {
			t.Fatalf("seed %d: serial Fig14 is not reproducible across env rebuilds", seed)
		}
	}
}

// TestGoldenReportEquivalence pins the Report-level contract inside the
// experiments layer: the exact same accel.Options run with and without
// the env's memo produce deeply equal Reports.
func TestGoldenReportEquivalence(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	o := env.NvWaOptions()
	direct := env.run(o)
	o.Memo = env.Memo()
	replay := env.run(o)
	if !reflect.DeepEqual(direct, replay) {
		t.Fatal("memo-replayed Report diverges from direct Report")
	}
	if direct.Cycles != replay.Cycles {
		t.Fatalf("cycle counts diverge: %d vs %d", direct.Cycles, replay.Cycles)
	}
}

// TestGoldenFrontEndsParallel covers the front-end experiment, whose
// minimizer row must bypass the FM-index memo rather than consume it.
func TestGoldenFrontEndsParallel(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	ser := Serial().WithSoftwareRPS(goldenRPS)
	par := NewRunner(2).WithSoftwareRPS(goldenRPS)
	first, err := FrontEndsWith(env, ser)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FrontEndsWith(env, par)
	if err != nil {
		t.Fatal(err)
	}
	if FormatFrontEnds(first) != FormatFrontEnds(parallel) {
		t.Fatal("parallel front-end rows diverge from serial")
	}
	if !reflect.DeepEqual(first, parallel) {
		t.Fatal("front-end row structs diverge")
	}
}
