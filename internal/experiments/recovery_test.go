package experiments

import (
	"reflect"
	"strings"
	"testing"

	"nvwa/internal/fault"
)

// TestRecoverySmoke is the crash-recovery tentpole property at the
// experiment layer: every seeded chip-crash schedule, across all three
// partition policies and both checkpoint modes, recovers to the merged
// Report byte-identical to the crash-free run, with bounded replay.
func TestRecoverySmoke(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	cfg := DefaultRecoveryConfig()
	res := Recovery(env, cfg, NewRunner(0))
	if err := res.Err(); err != nil {
		t.Fatalf("recovery sweep failed: %v\n%s", err, res.Format())
	}
	if want := len(cfg.Policies) * len(cfg.Intervals) * cfg.Seeds; len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	crashed := 0
	for _, row := range res.Rows {
		if row.Cycles != row.BaselineCycles {
			t.Errorf("policy=%s seed=%d every=%d: makespan %d != baseline %d",
				row.Policy, row.Seed, row.Interval, row.Cycles, row.BaselineCycles)
		}
		crashed += row.Recovery.Crashes
		if row.Interval > 0 && row.Recovery.Checkpoints == 0 {
			t.Errorf("policy=%s seed=%d every=%d: checkpointing enabled but none taken",
				row.Policy, row.Seed, row.Interval)
		}
		// Replay is bounded: each crash re-simulates at most the span
		// back to cycle 0, so the total is at most crashes × baseline.
		if max := int64(cfg.Crashes) * row.BaselineCycles; row.Recovery.ReplayedCycles > max {
			t.Errorf("policy=%s seed=%d every=%d: replayed %d cycles > bound %d",
				row.Policy, row.Seed, row.Interval, row.Recovery.ReplayedCycles, max)
		}
	}
	if crashed == 0 {
		t.Error("no crashes landed across the whole sweep — harness inert")
	}
	out := res.Format()
	for _, want := range []string{"contiguous", "balanced", "byte-identical"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// TestRecoveryDeterministicAcrossRunners pins the sweep's determinism:
// the serial policy and the parallel pool produce identical rows.
func TestRecoveryDeterministicAcrossRunners(t *testing.T) {
	t.Parallel()
	env := getEnv(t)
	cfg := DefaultRecoveryConfig()
	cfg.Seeds = 1
	cfg.Intervals = []int64{4000}
	serial := Recovery(env, cfg, Serial())
	parallel := Recovery(env, cfg, NewRunner(0))
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("recovery rows differ between runners:\nserial:\n%s\nparallel:\n%s",
			serial.Format(), parallel.Format())
	}
}

// TestCrashScheduleGenerator pins the private crash-schedule stream:
// deterministic per seed, distinct (shard, cycle) pairs, cycles >= 1,
// shards in range.
func TestCrashScheduleGenerator(t *testing.T) {
	t.Parallel()
	a := crashSchedule(3, 8, 4, 10000)
	b := crashSchedule(3, 8, 4, 10000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("crash schedule not deterministic per seed")
	}
	seen := map[[2]int64]bool{}
	for _, ev := range a {
		if ev.Kind != fault.ChipCrash {
			t.Fatalf("wrong kind %v", ev.Kind)
		}
		if ev.Cycle < 1 || ev.Cycle >= 10000 {
			t.Errorf("cycle %d out of range", ev.Cycle)
		}
		if ev.Unit < 0 || ev.Unit >= 4 {
			t.Errorf("unit %d out of range", ev.Unit)
		}
		k := [2]int64{int64(ev.Unit), ev.Cycle}
		if seen[k] {
			t.Errorf("duplicate crash %v", ev)
		}
		seen[k] = true
	}
	if c := crashSchedule(5, 8, 4, 10000); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the same schedule")
	}
}
