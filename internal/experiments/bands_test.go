package experiments

import (
	"strings"
	"testing"
)

func TestBandPressure(t *testing.T) {
	env := getEnv(t)
	rows := BandPressure(env, 150)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	narrow, wide, scaled := rows[0], rows[1], rows[2]
	if narrow.Hits == 0 {
		t.Fatal("no extensions measured")
	}
	// The wide band never retries more than the narrow one.
	if wide.Retries > narrow.Retries {
		t.Errorf("wide band retried more (%d) than narrow (%d)", wide.Retries, narrow.Retries)
	}
	// The scaled policy must retry less than the narrow fixed band
	// while doing less banded work than the wide fixed band — the
	// paper's iso-area argument.
	if scaled.Retries >= narrow.Retries {
		t.Errorf("scaled retries %d not below narrow %d", scaled.Retries, narrow.Retries)
	}
	if scaled.CellWork >= wide.CellWork {
		t.Errorf("scaled cell work %d not below wide %d", scaled.CellWork, wide.CellWork)
	}
	if !strings.Contains(FormatBandPressure(rows), "attempts/hit") {
		t.Error("format incomplete")
	}
}
