package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/genome"
	"nvwa/internal/stats"
)

// Fig14Row is one dataset of the sensitivity study.
type Fig14Row struct {
	Dataset string
	Long    bool
	// ThroughputKReads is the simulated NvWa throughput.
	ThroughputKReads float64
	// SoftwareKReads is the measured software pipeline throughput.
	SoftwareKReads float64
	// Speedup is NvWa over the software baseline (the paper reports
	// 285.6-357x for short reads and 259-272x for long reads against
	// its 16-thread CPU).
	Speedup float64
	// Distribution is the hit-length share per interval (Fig. 14(b)).
	Distribution []float64
}

// Fig14 runs NvWa (with the H. sapiens-derived configuration, as the
// paper fixes the hardware from NA12878 statistics) across the six
// species proxies plus a long-read workload.
func Fig14(refLen, numReads int, seed int64) []Fig14Row {
	return Fig14With(refLen, numReads, seed, Serial())
}

// Fig14With is Fig14 under an explicit execution policy. Each dataset
// row — genome synthesis, index construction, read simulation, and
// the NvWa simulation — is fully independent of the others (only the
// shared human-derived hardware configuration crosses rows, and it is
// computed first), so rows fan across the runner's workers whole. Row
// order is the fixed profile order regardless of completion order.
func Fig14With(refLen, numReads int, seed int64, r *Runner) []Fig14Row {
	human := NewEnv(refLen, numReads, seed)
	profiles := []genome.Profile{
		genome.HumanLike(),
		genome.ClitarchusLike,
		genome.ZapusLike,
		genome.CamelusLike,
		genome.VenustaLike,
		genome.ElegansLike,
	}
	longReads := numReads / 10
	if longReads < 20 {
		longReads = 20
	}
	rows := make([]Fig14Row, len(profiles)+1)
	r.Map(len(rows), func(i int) {
		if i < len(profiles) {
			p := profiles[i]
			env := NewEnvProfile(p, genome.ShortReadConfig(seed+int64(i)+7), refLen, numReads, seed+int64(i)+100)
			rows[i] = fig14Row(env, human, p.Name, false, r)
			return
		}
		// Long reads on the human-like genome (GACT-style iterative
		// extension on the largest EU class).
		longEnv := NewEnvProfile(genome.HumanLike(), genome.LongReadConfig(seed+55), refLen, longReads, seed+200)
		rows[i] = fig14Row(longEnv, human, "H.sapiens-like (1 kbp long reads)", true, r)
	})
	return rows
}

// fig14Row simulates one dataset with the hardware configuration
// derived from the reference (human) workload.
func fig14Row(env, hwEnv *Env, name string, long bool, r *Runner) Fig14Row {
	o := env.NvWaOptions()
	o.Config.EUClasses = hwEnv.Classes // hardware fixed from NA12878-like stats
	rep := env.runWith(o, r)
	sw := env.softwareRPS(r)
	row := Fig14Row{
		Dataset:          name,
		Long:             long,
		ThroughputKReads: rep.ThroughputReadsPerSec / 1000,
		SoftwareKReads:   sw / 1000,
	}
	if sw > 0 {
		row.Speedup = rep.ThroughputReadsPerSec / sw
	}
	row.Distribution = stats.NewIntervalHistogram([]int{16, 32, 64, 128}, rep.HitLens).Fractions()
	return row
}

// FormatFig14 renders the sensitivity table.
func FormatFig14(rows []Fig14Row) string {
	var b strings.Builder
	b.WriteString("Fig. 14 — multi-dataset sensitivity (hardware fixed from the H. sapiens profile)\n")
	b.WriteString("  dataset                              NvWa(K)  software(K)  speedup  hit distribution (<=16/32/64/128+)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-35s %8.0f  %11.1f  %6.0fx  ", r.Dataset, r.ThroughputKReads, r.SoftwareKReads, r.Speedup)
		for _, f := range r.Distribution {
			fmt.Fprintf(&b, "%5.1f%% ", 100*f)
		}
		b.WriteString("\n")
	}
	return b.String()
}
