package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nvwa/internal/pipeline"
	"nvwa/internal/seedsched"
	"nvwa/internal/stats"
	"nvwa/internal/systolic"
)

// Fig2Result is the execution-time breakdown of the seeding and
// seed-extension phases for individual reads (paper Fig. 2).
type Fig2Result struct {
	// Profiles holds the per-read phase times.
	Profiles []pipeline.PhaseProfile
	// Total, Seeding and Extension summarise per-read times (ns).
	Total, Seeding, Extension stats.Summary
	// SeedingFraction summarises seeding's per-read share.
	SeedingFraction stats.Summary
	// ZoomLo and ZoomHi delimit the paper's zoom window (reads
	// 350-400 in Fig. 2(b)).
	ZoomLo, ZoomHi int
}

// Fig2 profiles per-read phase times over the first n reads of the
// workload, reproducing the diversity observation that motivates the
// paper: both the phase proportions and the total time vary per read.
func Fig2(env *Env, n int) Fig2Result {
	if n > len(env.Reads) {
		n = len(env.Reads)
	}
	profiles := env.Aligner.Profile(env.Reads[:n])
	res := Fig2Result{Profiles: profiles, ZoomLo: 350, ZoomHi: 400}
	if res.ZoomHi > n {
		res.ZoomLo, res.ZoomHi = 0, n
	}
	var tot, sd, ext, frac []float64
	for _, p := range profiles {
		tot = append(tot, float64(p.TotalNS()))
		sd = append(sd, float64(p.SeedingNS))
		ext = append(ext, float64(p.ExtensionNS))
		frac = append(frac, p.SeedingFraction())
	}
	res.Total = stats.Summarize(tot)
	res.Seeding = stats.Summarize(sd)
	res.Extension = stats.Summarize(ext)
	res.SeedingFraction = stats.Summarize(frac)
	return res
}

// Format renders the summary plus the zoom window rows.
func (r Fig2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — per-read execution-time breakdown (%d reads)\n", len(r.Profiles))
	fmt.Fprintf(&b, "  total   ns: mean=%.0f cv=%.2f min=%.0f max=%.0f\n", r.Total.Mean, r.Total.CV, r.Total.Min, r.Total.Max)
	fmt.Fprintf(&b, "  seeding ns: mean=%.0f cv=%.2f\n", r.Seeding.Mean, r.Seeding.CV)
	fmt.Fprintf(&b, "  extend  ns: mean=%.0f cv=%.2f\n", r.Extension.Mean, r.Extension.CV)
	fmt.Fprintf(&b, "  seeding fraction: mean=%.2f min=%.2f max=%.2f\n",
		r.SeedingFraction.Mean, r.SeedingFraction.Min, r.SeedingFraction.Max)
	fmt.Fprintf(&b, "  zoom (reads %d-%d):\n", r.ZoomLo, r.ZoomHi)
	for i := r.ZoomLo; i < r.ZoomHi && i < len(r.Profiles); i++ {
		p := r.Profiles[i]
		fmt.Fprintf(&b, "    read %4d: seed=%7dns ext=%7dns (%.0f%% seeding, %d hits)\n",
			p.ReadID, p.SeedingNS, p.ExtensionNS, 100*p.SeedingFraction(), p.Hits)
	}
	return b.String()
}

// Fig5Result compares Read-in-Batch against One-Cycle scheduling on a
// toy workload (paper Fig. 5).
type Fig5Result struct {
	Durations         []int
	Units             int
	BatchMakespan     int
	OneCycleMakespan  int
	BatchUtilization  float64
	OneCycleUtilized  float64
}

// Fig5 schedules the given task durations on the given number of SUs
// under both strategies. With nil durations it uses a skewed default
// like the paper's example.
func Fig5(durations []int, units int) Fig5Result {
	if len(durations) == 0 {
		durations = []int{90, 35, 35, 20, 60, 25, 45, 30, 80, 20, 30, 40}
	}
	if units <= 0 {
		units = 4
	}
	res := Fig5Result{Durations: durations, Units: units}
	res.BatchMakespan, res.BatchUtilization = simulateToy(seedsched.NewBatchAllocator(units).Allocate, durations, units)
	res.OneCycleMakespan, res.OneCycleUtilized = simulateToy(seedsched.NewOneCycleAllocator(units).Allocate, durations, units)
	return res
}

// simulateToy runs a cycle-stepped schedule of the durations through
// an allocator and returns makespan and average unit utilization.
func simulateToy(alloc func([]bool) []int, durations []int, units int) (int, float64) {
	freeAt := make([]int, units)
	busyCycles := 0
	issued := 0
	busy := make([]bool, units)
	clock := 0
	for issued < len(durations) {
		for i := range busy {
			busy[i] = freeAt[i] > clock
		}
		for i, a := range alloc(busy) {
			if a >= 0 && a < len(durations) {
				freeAt[i] = clock + 1 + durations[a]
				busyCycles += durations[a]
				issued++
			}
		}
		clock++
	}
	makespan := 0
	for _, f := range freeAt {
		if f > makespan {
			makespan = f
		}
	}
	return makespan, float64(busyCycles) / float64(makespan*units)
}

// Format renders the comparison.
func (r Fig5Result) Format() string {
	return fmt.Sprintf(
		"Fig. 5 — Read-in-Batch vs One-Cycle (%d units, %d tasks)\n"+
			"  read-in-batch: makespan=%d cycles, SU utilization=%.1f%%\n"+
			"  one-cycle:     makespan=%d cycles, SU utilization=%.1f%%\n"+
			"  one-cycle speedup: %.2fx\n",
		r.Units, len(r.Durations),
		r.BatchMakespan, 100*r.BatchUtilization,
		r.OneCycleMakespan, 100*r.OneCycleUtilized,
		float64(r.BatchMakespan)/float64(r.OneCycleMakespan))
}

// Fig6Row is one design point of the One-Cycle Read Allocator's
// PopCount-tree critical path (paper Fig. 6 / Sec. IV-B).
type Fig6Row struct {
	Units     int
	TreeDepth int
	// CriticalPathNS estimates the path delay at ~0.1 ns per tree
	// level plus mask AND and mux overhead.
	CriticalPathNS float64
	// MeetsOneGHz reports whether the allocator closes timing at 1 GHz.
	MeetsOneGHz bool
}

// Fig6 tabulates the allocator's critical path for the paper's range
// of 64-512 seeding units.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	for _, n := range []int{64, 128, 256, 512} {
		a := seedsched.NewOneCycleAllocator(n)
		d := a.TreeDepth()
		ns := 0.05 + 0.09*float64(d) + 0.05 // AND stage + tree + mux
		rows = append(rows, Fig6Row{Units: n, TreeDepth: d, CriticalPathNS: ns, MeetsOneGHz: ns < 1.0})
	}
	return rows
}

// FormatFig6 renders the table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — One-Cycle Read Allocator critical path\n")
	b.WriteString("  units  tree-depth  est. path (ns)  1 GHz?\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d  %10d  %14.2f  %v\n", r.Units, r.TreeDepth, r.CriticalPathNS, r.MeetsOneGHz)
	}
	return b.String()
}

// Fig8Series is the systolic-array latency curve for one sequence
// length (paper Fig. 8).
type Fig8Series struct {
	Len  int
	PEs  []int
	Lat  []int
	Best int // PE count with minimal latency
}

// Fig8 computes Formula 3 latency for the paper's two lengths (9 and
// 64) across PE counts.
func Fig8() []Fig8Series {
	var out []Fig8Series
	for _, l := range []int{9, 64} {
		s := Fig8Series{Len: l}
		bestLat := int(^uint(0) >> 1)
		for p := 1; p <= 256; p++ {
			s.PEs = append(s.PEs, p)
			lat := systolic.Latency(l, l, p)
			s.Lat = append(s.Lat, lat)
			if lat < bestLat {
				bestLat, s.Best = lat, p
			}
		}
		out = append(out, s)
	}
	return out
}

// FormatFig8 renders sampled points of each curve.
func FormatFig8(series []Fig8Series) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — systolic array latency vs number of PEs (Formula 3)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  len=%d (best at P=%d):\n   ", s.Len, s.Best)
		for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			fmt.Fprintf(&b, " P=%d:%d", p, s.Lat[p-1])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9Result is the hybrid-vs-uniform toy schedule (paper Fig. 9(d)).
type Fig9Result struct {
	Hits          []int
	UniformPEs    []int
	HybridPEs     []int
	UniformCycles int
	HybridCycles  int
}

// Fig9 replays the paper's example: hits (20,40,10,65,127) on four
// uniform 64-PE units versus the hybrid pool (16,16,32,64,128). The
// paper reports 455 and 257 cycles.
func Fig9() Fig9Result {
	res := Fig9Result{
		Hits:       []int{20, 40, 10, 65, 127},
		UniformPEs: []int{64, 64, 64, 64},
		HybridPEs:  []int{16, 16, 32, 64, 128},
	}
	res.UniformCycles = scheduleHits(res.Hits, res.UniformPEs, false)
	res.HybridCycles = scheduleHits(res.Hits, res.HybridPEs, true)
	return res
}

// scheduleHits performs the Fig. 9(d) list schedule: every unit is
// ready to load at cycle 1; a hit completes at load+latency and the
// unit reloads the cycle after completing. Without matchOptimal,
// pending hits go to free units in arrival order (the uniform pool —
// every unit is interchangeable). With matchOptimal, each scheduling
// instant sorts the dispatched hits and the free units so the k-th
// shortest hit lands on the k-th smallest unit, the assignment the
// Hits Allocator's sort step produces.
func scheduleHits(hits, pes []int, matchOptimal bool) int {
	freeAt := make([]int, len(pes))
	for i := range freeAt {
		freeAt[i] = 1
	}
	pending := append([]int(nil), hits...)
	finish := 0
	for len(pending) > 0 {
		// Next scheduling instant: earliest load time.
		t := freeAt[0]
		for _, f := range freeAt {
			if f < t {
				t = f
			}
		}
		var idle []int
		for i, f := range freeAt {
			if f == t {
				idle = append(idle, i)
			}
		}
		k := len(idle)
		if k > len(pending) {
			k = len(pending)
		}
		batch := append([]int(nil), pending[:k]...)
		pending = pending[k:]
		if matchOptimal {
			sort.Ints(batch)
			sort.Slice(idle, func(a, b int) bool { return pes[idle[a]] < pes[idle[b]] })
		}
		for i, h := range batch {
			u := idle[i]
			done := t + systolic.Latency(h, h, pes[u])
			freeAt[u] = done + 1
			if done > finish {
				finish = done
			}
		}
	}
	return finish
}

// Format renders the toy comparison.
func (r Fig9Result) Format() string {
	return fmt.Sprintf(
		"Fig. 9 — hybrid vs uniform units on hits %v\n"+
			"  uniform %v: %d cycles (paper: 455)\n"+
			"  hybrid  %v: %d cycles (paper: 257)\n",
		r.Hits, r.UniformPEs, r.UniformCycles, r.HybridPEs, r.HybridCycles)
}
