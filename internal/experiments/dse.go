package experiments

import (
	"fmt"
	"math"
	"strings"

	"nvwa/internal/core"
	"nvwa/internal/energy"
	"nvwa/internal/extsched"
	"nvwa/internal/seq"
)

// Fig13aRow is one Hits-Buffer-depth design point.
type Fig13aRow struct {
	Depth            int
	ThroughputKReads float64
	SUUtil, EUUtil   float64
}

// Fig13a sweeps the Hits Buffer depth (the paper finds 1024 best).
func Fig13a(env *Env, depths []int) []Fig13aRow { return Fig13aWith(env, depths, Serial()) }

// Fig13aWith is Fig13a under an explicit execution policy: each depth
// design point is an independent simulation, fanned across the
// runner's workers with order-preserving row collection.
func Fig13aWith(env *Env, depths []int, r *Runner) []Fig13aRow {
	if len(depths) == 0 {
		depths = []int{64, 128, 256, 512, 1024, 2048, 4096}
	}
	rows := make([]Fig13aRow, len(depths))
	r.Map(len(depths), func(i int) {
		o := env.NvWaOptions()
		o.Config.HitsBufferDepth = depths[i]
		rep := env.runWith(o, r)
		rows[i] = Fig13aRow{
			Depth:            depths[i],
			ThroughputKReads: rep.ThroughputReadsPerSec / 1000,
			SUUtil:           rep.SUUtil,
			EUUtil:           rep.EUUtil,
		}
	})
	return rows
}

// FormatFig13a renders the sweep.
func FormatFig13a(rows []Fig13aRow) string {
	var b strings.Builder
	b.WriteString("Fig. 13(a) — Hits Buffer depth design space (paper optimum: 1024)\n")
	b.WriteString("  depth  throughput(K)   SU util   EU util\n")
	best := 0
	for i, r := range rows {
		if r.ThroughputKReads > rows[best].ThroughputKReads {
			best = i
		}
	}
	for i, r := range rows {
		mark := ""
		if i == best {
			mark = "  <- best"
		}
		fmt.Fprintf(&b, "  %5d  %13.0f   %6.1f%%   %6.1f%%%s\n",
			r.Depth, r.ThroughputKReads, 100*r.SUUtil, 100*r.EUUtil, mark)
	}
	return b.String()
}

// Fig13bRow is one interval-count design point.
type Fig13bRow struct {
	Intervals        int
	Sizes            []int
	Classes          []core.EUClass
	ThroughputKReads float64
	// CoordinatorPowerW = buffer + allocation logic (energy model).
	BufferPowerW, LogicPowerW float64
}

// Fig13b sweeps the number of hybrid-EU intervals (the paper picks 4
// as the throughput/power sweet spot). For each interval count the
// pool is re-derived from the workload's hit distribution under the
// same 2880-PE budget.
func Fig13b(env *Env, counts []int) []Fig13bRow { return Fig13bWith(env, counts, Serial()) }

// Fig13bWith is Fig13b under an explicit execution policy. The hit
// distribution is collected once up front; the per-count pool solve
// and simulation fan across the runner's workers. Rows keep the input
// order; counts whose pool solve fails are dropped, as in the serial
// path.
func Fig13bWith(env *Env, counts []int, r *Runner) []Fig13bRow {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	budget := core.DefaultConfig().TotalPEs()
	lens := env.Aligner.HitLengths(sampleReads(env, 500))
	slots := make([]*Fig13bRow, len(counts))
	r.Map(len(counts), func(i int) {
		n := counts[i]
		sizes := sizesForIntervals(n)
		ladder := make([]core.EUClass, len(sizes))
		for k, p := range sizes {
			ladder[k] = core.EUClass{PEs: p, Count: 1}
		}
		dist := extsched.NewClassifier(ladder).Histogram(lens)
		classes, err := extsched.SolveHybrid(dist, sizes, budget)
		if err != nil {
			return
		}
		o := env.NvWaOptions()
		o.Config.EUClasses = compactClasses(classes)
		rep := env.runWith(o, r)
		bw, lw := energy.CoordinatorPower(n, o.Config.HitsBufferDepth)
		slots[i] = &Fig13bRow{
			Intervals:        n,
			Sizes:            sizes,
			Classes:          classes,
			ThroughputKReads: rep.ThroughputReadsPerSec / 1000,
			BufferPowerW:     bw,
			LogicPowerW:      lw,
		}
	})
	var rows []Fig13bRow
	for _, s := range slots {
		if s != nil {
			rows = append(rows, *s)
		}
	}
	return rows
}

// sizesForIntervals picks n strictly increasing unit widths spanning
// the short-read extension range. 4 gives the paper's 16/32/64/128.
func sizesForIntervals(n int) []int {
	switch n {
	case 1:
		return []int{64}
	case 2:
		return []int{32, 128}
	case 4:
		return []int{16, 32, 64, 128}
	case 8:
		return []int{8, 16, 24, 32, 48, 64, 96, 128}
	case 16:
		return []int{4, 8, 12, 16, 20, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160}
	default:
		// Geometric ladder between 8 and 256.
		sizes := make([]int, 0, n)
		lo, hi := 8.0, 256.0
		prev := 0
		for i := 0; i < n; i++ {
			v := int(lo*math.Pow(hi/lo, float64(i)/float64(n-1)) + 0.5)
			if v <= prev {
				v = prev + 1
			}
			sizes = append(sizes, v)
			prev = v
		}
		return sizes
	}
}

// compactClasses drops zero-count classes (SolveHybrid may sacrifice
// low-mass intervals under tight budgets).
func compactClasses(cs []core.EUClass) []core.EUClass {
	out := cs[:0:0]
	for _, c := range cs {
		if c.Count > 0 {
			out = append(out, c)
		}
	}
	return out
}

// sampleReads returns up to n reads of the workload.
func sampleReads(env *Env, n int) []seq.Seq {
	if n > len(env.Reads) {
		n = len(env.Reads)
	}
	return env.Reads[:n]
}

// FormatFig13b renders the sweep.
func FormatFig13b(rows []Fig13bRow) string {
	var b strings.Builder
	b.WriteString("Fig. 13(b) — interval-count design space (paper optimum: 4)\n")
	b.WriteString("  intervals  throughput(K)  buffer(W)  logic(W)  coord total(W)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %9d  %13.0f  %9.3f  %8.3f  %14.3f\n",
			r.Intervals, r.ThroughputKReads, r.BufferPowerW, r.LogicPowerW, r.BufferPowerW+r.LogicPowerW)
	}
	return b.String()
}

// Fig2Diversity quantifies the Fig. 2 observation numerically for
// tests: the coefficient of variation of per-read totals.
func Fig2Diversity(r Fig2Result) float64 { return r.Total.CV }
