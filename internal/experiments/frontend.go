package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/accel"
	"nvwa/internal/pipeline"
)

// FrontEndRow is one seeding algorithm hosted by the accelerator.
type FrontEndRow struct {
	Name             string
	ThroughputKReads float64
	SUUtil, EUUtil   float64
	HitsPerRead      float64
	Aligned          int
}

// FrontEnds demonstrates the paper's Sec. VI flexibility claim at
// system level: the same schedulers, Coordinator, and EUs host two
// different seeding algorithms — the FM-index three-pass pipeline and
// the minimap2-style minimizer seed-and-chain — through the Table III
// unified interface.
func FrontEnds(env *Env) ([]FrontEndRow, error) { return FrontEndsWith(env, Serial()) }

// FrontEndsWith is FrontEnds under an explicit execution policy: the
// front-end rows are independent systems and fan across the runner's
// workers. The minimizer row configures its own Seeder, so the shared
// FM-index memo is (correctly) not consumed there — accel.System
// refuses a memo built over a different front end.
func FrontEndsWith(env *Env, rn *Runner) ([]FrontEndRow, error) {
	ms, err := pipeline.NewMinimizerSeeder(env.Aligner, 10, 15)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		mut  func(*accel.Options)
	}{
		{"FM-index (BWA-MEM three-pass)", func(o *accel.Options) {}},
		{"minimizer seed-and-chain (minimap2-style)", func(o *accel.Options) { o.Seeder = ms }},
	}
	rows := make([]FrontEndRow, len(configs))
	rn.Map(len(configs), func(i int) {
		c := configs[i]
		o := env.NvWaOptions()
		c.mut(&o)
		rep := env.runWith(o, rn)
		aligned := 0
		for _, r := range rep.Results {
			if r.Found {
				aligned++
			}
		}
		rows[i] = FrontEndRow{
			Name:             c.name,
			ThroughputKReads: rep.ThroughputReadsPerSec / 1000,
			SUUtil:           rep.SUUtil,
			EUUtil:           rep.EUUtil,
			HitsPerRead:      float64(rep.TotalHits) / float64(max1(rep.Reads)),
			Aligned:          aligned,
		}
	})
	return rows, nil
}

// FormatFrontEnds renders the comparison.
func FormatFrontEnds(rows []FrontEndRow) string {
	var b strings.Builder
	b.WriteString("Sec. VI — seeding front ends through the unified interface\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-44s %8.0fK  SU %5.1f%%  EU %5.1f%%  %.2f hits/read  %d aligned\n",
			r.Name, r.ThroughputKReads, 100*r.SUUtil, 100*r.EUUtil, r.HitsPerRead, r.Aligned)
	}
	return b.String()
}
