package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/accel"
	"nvwa/internal/baselines"
	"nvwa/internal/core"
	"nvwa/internal/energy"
)

// Table1 renders the system configurations (paper Table I). The CPU
// and GPU columns are the paper's platforms, quoted for context.
func Table1(cfg core.Config) string {
	var b strings.Builder
	b.WriteString("Table I — system configurations\n")
	b.WriteString("                    BWA-MEM (paper)        GASAL2 (paper)         NvWa\n")
	fmt.Fprintf(&b, "  compute           16 cores @ 2.10GHz     6912 cores @ 1.41GHz   %d SUs and %d EUs @ %g GHz\n",
		cfg.NumSUs, cfg.TotalEUs(), cfg.ClockGHz)
	fmt.Fprintf(&b, "  on-chip memory    20MB                   40MB                   512KB (SUs), 20MB (EUs), 150KB (Coordinator)\n")
	fmt.Fprintf(&b, "  off-chip memory   136.5GB/s DDR4         1555GB/s HBM v2.0      256GB/s HBM v1.0\n")
	fmt.Fprintf(&b, "  EU pool:")
	for _, c := range cfg.EUClasses {
		fmt.Fprintf(&b, " %dx%dPE", c.Count, c.PEs)
	}
	fmt.Fprintf(&b, " (%d PEs total)\n", cfg.TotalPEs())
	return b.String()
}

// Table2Result combines the static Table II model with simulated
// energy-per-read comparisons.
type Table2Result struct {
	Components []energy.Component
	// NvWaEnergyPerReadJ uses the Table II core power and the
	// simulated throughput.
	NvWaEnergyPerReadJ float64
	// SimThroughputKReads is the simulated NvWa throughput used.
	SimThroughputKReads float64
}

// Table2 evaluates the area/power breakdown and energy per read.
func Table2(rep *accel.Report) Table2Result {
	cs := energy.TableII()
	res := Table2Result{Components: cs}
	if rep != nil {
		res.SimThroughputKReads = rep.ThroughputReadsPerSec / 1000
		res.NvWaEnergyPerReadJ = energy.EnergyPerReadJ(energy.TotalPower(cs)+energy.HBMPowerW, rep.ThroughputReadsPerSec)
	}
	return res
}

// Format renders the breakdown plus the paper's energy claims.
func (r Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table II — area and power breakdown\n")
	b.WriteString(energy.FormatTable(r.Components))
	aFrac, pFrac := energy.SchedulerShare(r.Components)
	fmt.Fprintf(&b, "scheduling blocks: %.2f%% of area, %.2f%% of power (paper: 5.84%% / 13.38%%)\n",
		100*aFrac, 100*pFrac)
	if r.SimThroughputKReads > 0 {
		fmt.Fprintf(&b, "simulated throughput %.0f Kreads/s -> %.3g J/read at %.3f W (with HBM)\n",
			r.SimThroughputKReads, r.NvWaEnergyPerReadJ, energy.TotalPower(r.Components)+energy.HBMPowerW)
	}
	b.WriteString("paper energy reductions: ")
	for _, p := range baselines.Platforms() {
		if p.PaperEnergyReduction > 0 {
			fmt.Fprintf(&b, "%s %.2fx  ", p.Kind, p.PaperEnergyReduction)
		}
	}
	b.WriteString("\n")
	return b.String()
}
