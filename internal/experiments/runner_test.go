package experiments

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunnerMapOrderPreserving(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 4, 16} {
		r := NewRunner(workers)
		const n = 100
		out := make([]int, n)
		r.Map(n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunnerMapRunsEachIndexOnce(t *testing.T) {
	t.Parallel()
	r := NewRunner(8)
	const n = 500
	counts := make([]int64, n)
	var total int64
	r.Map(n, func(i int) {
		atomic.AddInt64(&counts[i], 1)
		atomic.AddInt64(&total, 1)
	})
	if total != n {
		t.Fatalf("ran %d calls, want %d", total, n)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestRunnerMapEmptyAndSerial(t *testing.T) {
	t.Parallel()
	ran := 0
	Serial().Map(0, func(int) { ran++ })
	NewRunner(4).Map(0, func(int) { ran++ })
	if ran != 0 {
		t.Fatal("Map(0) ran the function")
	}
	// Serial Map must execute in program order on the calling goroutine.
	var order []int
	Serial().Map(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunnerMapPanicsPropagate(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	NewRunner(4).Map(32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestRunnerPolicies(t *testing.T) {
	t.Parallel()
	if Serial().Parallel() || Serial().UseMemo() {
		t.Fatal("Serial must be one worker without memo")
	}
	if Serial().String() != "serial" {
		t.Fatalf("Serial name %q", Serial().String())
	}
	r := NewRunner(0)
	if r.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers %d", r.Workers())
	}
	four := NewRunner(4)
	if !four.Parallel() || !four.UseMemo() {
		t.Fatal("multi-worker runner should enable memo replay")
	}
	if !strings.Contains(four.String(), "j=4") {
		t.Fatalf("name %q", four.String())
	}
	if four.WithMemo(false).UseMemo() {
		t.Fatal("WithMemo(false) kept memo on")
	}
	if four.UseMemo() != true {
		t.Fatal("WithMemo must not mutate the receiver")
	}
	if p := four.WithSoftwareRPS(5e5); p.swRPS != 5e5 || four.swRPS != 0 {
		t.Fatal("WithSoftwareRPS must copy, not mutate")
	}
	var nilRunner *Runner
	if nilRunner.Workers() != 1 || nilRunner.UseMemo() {
		t.Fatal("nil runner must behave serially")
	}
}
