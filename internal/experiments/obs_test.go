package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"nvwa/internal/obs"
)

// TestFig12ObservedMatchesUnobserved is the experiment-level
// determinism contract: attaching the full observability layer to the
// Fig. 12 NvWa run changes nothing in the result, and the exported
// artifacts are valid JSON whose headline gauges equal the Report's.
func TestFig12ObservedMatchesUnobserved(t *testing.T) {
	t.Parallel()
	env := getEnv(t)

	plain := Fig12(env)
	ob := obs.New()
	observed := Fig12Observed(env, ob)

	if !reflect.DeepEqual(plain.NvWa, observed.NvWa) {
		t.Error("observation changed the Fig. 12 NvWa report")
	}
	if plain.Format() != observed.Format() {
		t.Error("observed Fig. 12 formats differently")
	}
	if err := ob.Inv.Err(); err != nil {
		t.Fatalf("invariant violation in the Fig. 12 run: %v", err)
	}
	if ob.Inv.Checks() == 0 {
		t.Fatal("invariant checker never ran")
	}

	var mbuf bytes.Buffer
	if err := ob.Metrics.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbuf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if got, want := snap.Gauges["su.utilization"], observed.NvWa.SUUtil; got != want {
		t.Errorf("exported su.utilization %v != Report %v", got, want)
	}
	if got, want := snap.Gauges["eu.utilization"], observed.NvWa.EUUtil; got != want {
		t.Errorf("exported eu.utilization %v != Report %v", got, want)
	}

	var tbuf bytes.Buffer
	if err := ob.Trace.WriteJSON(&tbuf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
}

// TestRunAttachesInvariantsUnderTest pins the safety net itself: when
// an experiment runs under `go test` without an explicit observer,
// Env.run attaches the invariant checker (this is what guards every
// figure's code path). The test only needs the run to complete — a
// violation would panic — plus proof the checker was really active,
// which TestFig12ObservedMatchesUnobserved's Checks()>0 assertion and
// the panic path in run() provide; here we additionally verify that an
// explicit observer is respected (not overwritten).
func TestRunAttachesInvariantsUnderTest(t *testing.T) {
	t.Parallel()
	if !testing.Testing() {
		t.Fatal("testing.Testing() false inside a test")
	}
	env := getEnv(t)
	ob := obs.NewInvariantsOnly()
	rep := env.RunNvWaObserved(ob)
	if rep == nil || rep.Reads != len(env.Reads) {
		t.Fatal("observed run incomplete")
	}
	if ob.Inv.Checks() == 0 {
		t.Error("explicit observer's checker never consulted — was it replaced?")
	}
}
