package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"nvwa/internal/accel"
	"nvwa/internal/fault"
)

// RecoveryConfig parameterises the crash-recovery smoke sweep: seeded
// chip-crash schedules across shard-partition policies and checkpoint
// intervals, each asserted byte-identical to its crash-free baseline.
type RecoveryConfig struct {
	// Seeds is the number of generated crash schedules per (policy,
	// interval) cell.
	Seeds int
	// Shards is the scale-out width under test.
	Shards int
	// Policies lists the partition policies swept (default: contiguous,
	// interleaved, balanced).
	Policies []accel.ShardPolicy
	// Intervals lists the checkpoint intervals swept, in cycles. 0 means
	// no periodic checkpoints: crashed shards restart from scratch.
	Intervals []int64
	// Crashes is the number of chip-crash events per schedule.
	Crashes int
}

// DefaultRecoveryConfig returns the smoke-level sweep: two seeds across
// three policies and two checkpoint intervals on a 4-shard machine.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Seeds:  2,
		Shards: 4,
		Policies: []accel.ShardPolicy{
			accel.ShardContiguous, accel.ShardInterleaved, accel.ShardBalanced,
		},
		Intervals: []int64{0, 5000},
		Crashes:   3,
	}
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	d := DefaultRecoveryConfig()
	if c.Seeds <= 0 {
		c.Seeds = d.Seeds
	}
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if len(c.Policies) == 0 {
		c.Policies = d.Policies
	}
	if len(c.Intervals) == 0 {
		c.Intervals = d.Intervals
	}
	if c.Crashes <= 0 {
		c.Crashes = d.Crashes
	}
	return c
}

// crashSchedule draws n distinct (shard, cycle) chip-crash events over
// [1, horizon] from a private deterministic stream. It is generated
// directly rather than through fault.Spec so the injectable-fault RNG
// stream (and every pinned chaos figure) stays untouched.
func crashSchedule(seed int64, n, shards int, horizon int64) []fault.Event {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 7))
	if horizon < 2 {
		horizon = 2
	}
	seen := map[[2]int64]bool{}
	evs := make([]fault.Event, 0, n)
	for len(evs) < n {
		u := rng.Intn(shards)
		c := 1 + rng.Int63n(horizon-1)
		k := [2]int64{int64(u), c}
		if seen[k] {
			continue
		}
		seen[k] = true
		evs = append(evs, fault.Event{Kind: fault.ChipCrash, Cycle: c, Unit: u})
	}
	return evs
}

// RecoveryRow is one seeded crash-recovery run.
type RecoveryRow struct {
	// Policy is the shard-partition policy under test; Seed generated
	// the crash schedule; Interval is the checkpoint period (0: restart
	// from scratch).
	Policy   accel.ShardPolicy
	Seed     int64
	Interval int64
	// BaselineCycles is the crash-free merged makespan; Cycles is the
	// recovered run's (pinned equal when Identical holds).
	BaselineCycles, Cycles int64
	// Recovery is the run's crash-recovery ledger.
	Recovery accel.RecoveryStats
	// Identical reports whether the recovered merged Report, with its
	// Recovery ledger stripped, is byte-identical to the crash-free
	// baseline — the whole point of the exercise.
	Identical bool
	// RunErr is a non-empty construction or run failure.
	RunErr string
}

// OK reports whether the row recovered to the identical Report.
func (r RecoveryRow) OK() bool { return r.Identical && r.RunErr == "" }

// ReplayOverhead is the replayed-cycle cost relative to the crash-free
// makespan (the re-simulated fraction of the run).
func (r RecoveryRow) ReplayOverhead() float64 {
	if r.BaselineCycles <= 0 {
		return 0
	}
	return float64(r.Recovery.ReplayedCycles) / float64(r.BaselineCycles)
}

// RecoveryResult is the sweep outcome.
type RecoveryResult struct {
	Rows []RecoveryRow
}

// Err returns the first failing row, or nil when every schedule
// recovered byte-identically.
func (r RecoveryResult) Err() error {
	for _, row := range r.Rows {
		if row.RunErr != "" {
			return fmt.Errorf("recovery: policy=%s seed=%d every=%d: %s",
				row.Policy, row.Seed, row.Interval, row.RunErr)
		}
		if !row.Identical {
			return fmt.Errorf("recovery: policy=%s seed=%d every=%d: recovered Report diverges from crash-free run",
				row.Policy, row.Seed, row.Interval)
		}
	}
	return nil
}

// Recovery sweeps seeded chip-crash schedules across shard-partition
// policies and checkpoint intervals. Each cell runs the workload twice
// — crash-free, then with the crash schedule and periodic
// checkpointing — and asserts the merged Reports byte-identical after
// stripping the Recovery ledger, recording the replayed-cycle and
// checkpoint-traffic overheads. Rows fan across the runner's worker
// pool; collection order is program order, so output is deterministic.
func Recovery(env *Env, cfg RecoveryConfig, r *Runner) RecoveryResult {
	cfg = cfg.withDefaults()

	// Crash-free baselines, one per policy: the crash schedules draw
	// their cycles from the baseline makespan so crashes land inside the
	// run, and the recovered Reports are compared against these bytes.
	type baseline struct {
		cycles int64
		bytes  []byte
		err    string
	}
	baselines := make([]baseline, len(cfg.Policies))
	r.Map(len(cfg.Policies), func(i int) {
		rep, err := recoveryRun(env, cfg.Policies[i], cfg.Shards, nil, 0)
		if err != nil {
			baselines[i].err = err.Error()
			return
		}
		baselines[i] = baseline{cycles: rep.Cycles, bytes: recoveryReportBytes(rep)}
	})

	perPolicy := cfg.Seeds * len(cfg.Intervals)
	res := RecoveryResult{Rows: make([]RecoveryRow, len(cfg.Policies)*perPolicy)}
	r.Map(len(res.Rows), func(i int) {
		pi := i / perPolicy
		ii := (i % perPolicy) / cfg.Seeds
		ki := i % cfg.Seeds
		row := RecoveryRow{
			Policy:   cfg.Policies[pi],
			Seed:     int64(ki),
			Interval: cfg.Intervals[ii],
		}
		b := baselines[pi]
		if b.err != "" {
			row.RunErr = "baseline: " + b.err
			res.Rows[i] = row
			return
		}
		row.BaselineCycles = b.cycles
		crashes := crashSchedule(row.Seed, cfg.Crashes, cfg.Shards, b.cycles)
		rep, err := recoveryRun(env, row.Policy, cfg.Shards, crashes, row.Interval)
		if err != nil {
			row.RunErr = err.Error()
			res.Rows[i] = row
			return
		}
		row.Cycles = rep.Cycles
		if rep.Recovery != nil {
			row.Recovery = *rep.Recovery
		}
		stripped := *rep
		stripped.Recovery = nil
		row.Identical = string(recoveryReportBytes(&stripped)) == string(b.bytes)
		res.Rows[i] = row
	})
	return res
}

func recoveryRun(env *Env, pol accel.ShardPolicy, shards int, crashes []fault.Event, every int64) (*accel.Report, error) {
	o := env.NvWaOptions()
	if len(crashes) > 0 {
		o.Faults = &fault.Plan{Events: crashes}
	}
	sys, err := accel.NewSharded(env.Aligner, accel.ShardedOptions{
		Options: o, Shards: shards, Policy: pol, Workers: 1,
		CheckpointEvery: every,
	})
	if err != nil {
		return nil, err
	}
	return sys.RunChecked(env.Reads)
}

func recoveryReportBytes(rep *accel.Report) []byte {
	b, err := json.Marshal(rep)
	if err != nil {
		panic(err) // Report is a plain value struct; cannot fail
	}
	return b
}

// Format renders the sweep table.
func (r RecoveryResult) Format() string {
	var b strings.Builder
	b.WriteString("Recovery — seeded chip-crash schedules across partition policies and checkpoint intervals\n")
	fmt.Fprintf(&b, "  %-12s %5s %8s %9s %9s %7s %8s %6s %10s  %s\n",
		"policy", "seed", "every", "base-cyc", "cycles", "crashes",
		"replayed", "ckpts", "ckpt-bytes", "status")
	for _, row := range r.Rows {
		status := "identical"
		if row.RunErr != "" {
			status = "error: " + row.RunErr
		} else if !row.Identical {
			status = "DIVERGED"
		}
		fmt.Fprintf(&b, "  %-12s %5d %8d %9d %9d %7d %7.1f%% %6d %10d  %s\n",
			row.Policy, row.Seed, row.Interval, row.BaselineCycles, row.Cycles,
			row.Recovery.Crashes, 100*row.ReplayOverhead(),
			row.Recovery.Checkpoints, row.Recovery.CheckpointBytes, status)
	}
	n := 0
	for _, row := range r.Rows {
		if row.OK() {
			n++
		}
	}
	fmt.Fprintf(&b, "  %d/%d crashed runs recovered to the byte-identical merged Report\n", n, len(r.Rows))
	return b.String()
}
