package experiments

import (
	"fmt"
	"strings"

	"nvwa/internal/accel"
)

// IntraUnitRow is one scheduling level of the Sec. IV-B discussion.
type IntraUnitRow struct {
	Name             string
	Cycles           int64
	ThroughputKReads float64
	SUUtil           float64
}

// IntraUnit compares the three scheduling levels the paper's Sec. IV-B
// discussion distinguishes:
//
//  1. no scheduling (Read-in-Batch, DRAM latency exposed),
//  2. ERT-style intra-unit context switching only (DRAM hidden inside
//     each SU, batch barrier remains),
//  3. NvWa's One-Cycle Read Allocator (inter-unit bubbles also gone).
func IntraUnit(env *Env) []IntraUnitRow {
	configs := []struct {
		name      string
		seed      accel.SeedStrategy
		serialize bool
	}{
		{"read-in-batch, no switching", accel.ReadInBatch, true},
		{"read-in-batch + ERT-style intra-unit switching", accel.ReadInBatch, false},
		{"one-cycle read allocator (NvWa)", accel.OneCycle, false},
	}
	var rows []IntraUnitRow
	for _, c := range configs {
		o := env.NvWaOptions()
		o.SeedStrategy = c.seed
		o.SUCost.SerializeDRAM = c.serialize
		rep := env.run(o)
		rows = append(rows, IntraUnitRow{
			Name:             c.name,
			Cycles:           rep.Cycles,
			ThroughputKReads: rep.ThroughputReadsPerSec / 1000,
			SUUtil:           rep.SUUtil,
		})
	}
	return rows
}

// FormatIntraUnit renders the comparison.
func FormatIntraUnit(rows []IntraUnitRow) string {
	var b strings.Builder
	b.WriteString("Sec. IV-B — intra-unit vs inter-unit scheduling levels\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-48s %9d cycles  %8.0fK  SU %5.1f%%\n",
			r.Name, r.Cycles, r.ThroughputKReads, 100*r.SUUtil)
	}
	return b.String()
}
