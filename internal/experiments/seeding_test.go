package experiments

import (
	"strings"
	"testing"
)

func TestSeedingTraffic(t *testing.T) {
	env := getEnv(t)
	res, err := SeedingTraffic(env, 100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 100 {
		t.Fatalf("reads = %d", res.Reads)
	}
	// The FM-index does many small on-chip occ reads; the hash method
	// does 2 DRAM pointer reads per k-mer plus one per position.
	if res.FMOccAccesses <= 0 || res.FMSALookups <= 0 {
		t.Error("no FM traffic measured")
	}
	if res.HashPointer <= 0 || res.HashPosition <= 0 {
		t.Error("no hash traffic measured")
	}
	// Strided every-12th k-mer of a 101bp read = ~8 lookups = 16 pointer
	// accesses (the "2" of 2+P).
	if res.HashPointer < 10 || res.HashPointer > 24 {
		t.Errorf("pointer accesses/read = %.1f, expected ~16", res.HashPointer)
	}
	if !strings.Contains(res.Format(), "2+P") {
		t.Error("format incomplete")
	}
}
