// Package experiments regenerates every table and figure of the
// paper's evaluation (Sec. V). Each experiment is a function returning
// a structured result with a Format method that prints the same rows
// or series the paper reports. DESIGN.md maps experiment IDs to the
// modules involved; EXPERIMENTS.md records paper-versus-measured
// values.
package experiments

import (
	"fmt"
	"sync"
	"testing"

	"nvwa/internal/accel"
	"nvwa/internal/core"
	"nvwa/internal/extsched"
	"nvwa/internal/genome"
	"nvwa/internal/obs"
	"nvwa/internal/pipeline"
	"nvwa/internal/seq"
)

// Env is a reusable workload: a synthetic reference, its index, and a
// simulated read set. Building the index dominates setup time, so
// experiments share an Env where possible. An Env is safe for
// concurrent use: the aligner and index are read-only after
// construction (AlignAll already exercises them from many goroutines),
// and every simulation builds a private accel.System.
type Env struct {
	// Ref is the synthetic reference genome.
	Ref *genome.Reference
	// Aligner owns the FM-index and the software pipeline.
	Aligner *pipeline.Aligner
	// Reads are the simulated read sequences.
	Reads []seq.Seq
	// Records keeps the simulation ground truth for accuracy checks.
	Records []genome.Read
	// Classes is the hybrid EU pool derived from this workload's hit
	// distribution via Eq. (4)-(5), as Sec. V-A prescribes.
	Classes []core.EUClass

	memoOnce sync.Once
	memo     *accel.Memo
}

// NewEnv builds the standard short-read workload: a human-like
// reference and 101 bp Illumina-like reads (the NA12878 stand-in).
func NewEnv(refLen, numReads int, seed int64) *Env {
	return NewEnvProfile(genome.HumanLike(), genome.ShortReadConfig(seed+1), refLen, numReads, seed)
}

// NewEnvProfile builds a workload from an explicit genome profile and
// read simulator configuration (the Fig. 14 species proxies).
func NewEnvProfile(p genome.Profile, rc genome.SimulatorConfig, refLen, numReads int, seed int64) *Env {
	ref := genome.Generate(p, refLen, seed)
	aligner := pipeline.New(ref.Seq, pipeline.DefaultOptions())
	records := genome.Simulate(ref, numReads, rc)
	reads := make([]seq.Seq, len(records))
	for i, r := range records {
		reads[i] = r.Seq
	}
	env := &Env{Ref: ref, Aligner: aligner, Reads: reads, Records: records}
	sample := reads
	if len(sample) > 500 {
		sample = sample[:500]
	}
	classes, err := accel.DeriveEUClasses(aligner, sample, extsched.PowerOfTwoSizes(4, 16), core.DefaultConfig().TotalPEs())
	if err != nil {
		// Degenerate workloads (no hits) fall back to the Table I pool.
		classes = core.DefaultConfig().EUClasses
	}
	env.Classes = classes
	return env
}

// NvWaOptions returns the full NvWa configuration with this workload's
// derived EU pool.
func (e *Env) NvWaOptions() accel.Options {
	o := accel.NvWaOptions()
	o.Config.EUClasses = e.Classes
	return o
}

// BaselineOptions returns the SUs+EUs comparison system.
func (e *Env) BaselineOptions() accel.Options { return accel.BaselineOptions() }

// RunNvWa simulates the full NvWa system on the workload.
func (e *Env) RunNvWa() *accel.Report { return e.run(e.NvWaOptions()) }

// RunBaseline simulates the SUs+EUs baseline on the workload.
func (e *Env) RunBaseline() *accel.Report { return e.run(e.BaselineOptions()) }

func (e *Env) run(o accel.Options) *accel.Report {
	// Under `go test`, every experiment simulation carries the scheduler
	// invariant checker (hit conservation, round soundness, buffer
	// bounds, monotone time), so a regression in any figure's code path
	// fails loudly instead of skewing numbers. Observation never changes
	// Reports, so the figures are identical either way.
	var inv *obs.Invariants
	if o.Obs == nil && testing.Testing() {
		ob := obs.NewInvariantsOnly()
		o.Obs = ob
		inv = ob.Inv
	}
	sys, err := accel.New(e.Aligner, o)
	if err != nil {
		panic(err) // options are constructed internally; invalid means a bug
	}
	rep := sys.Run(e.Reads)
	if inv != nil {
		if err := inv.Err(); err != nil {
			panic(fmt.Sprintf("experiments: scheduler invariant violated (%s): %v", sys.Describe(), err))
		}
	}
	return rep
}

// RunNvWaObserved simulates the full NvWa system with an explicit
// observer attached (metrics, trace, invariants), for the CLI's
// -trace/-metrics flags. The Report is byte-identical to RunNvWa's.
func (e *Env) RunNvWaObserved(ob *obs.Observer) *accel.Report {
	o := e.NvWaOptions()
	o.Obs = ob
	return e.run(o)
}

// Memo returns the workload's shared functional-replay cache, building
// it on first use (in parallel across reads). The cache covers the
// default FM-index front end; systems configured with another Seeder
// ignore it.
func (e *Env) Memo() *accel.Memo {
	e.memoOnce.Do(func() {
		e.memo = accel.BuildMemo(e.Aligner, nil, e.Reads, 0)
	})
	return e.memo
}

// runWith simulates one configuration under the runner's policy:
// memo-replay runs attach the shared cache, the serial policy runs the
// unmodified path, and a sharded policy (Runner.WithShards) routes the
// whole simulation through the scale-out engine. Memo replay and the
// unsharded serial path produce byte-identical Reports; sharded runs
// produce the deterministic merged Report, invariant to worker count.
func (e *Env) runWith(o accel.Options, r *Runner) *accel.Report {
	if r.UseMemo() && o.Seeder == nil {
		o.Memo = e.Memo()
	}
	if r.Shards() > 1 {
		return e.runSharded(o, r)
	}
	return e.run(o)
}

// runSharded simulates one configuration on the sharded scale-out
// engine, carrying the same under-test invariant checking as run: the
// per-shard checkers merge into the parent and the cross-shard
// conservation equation is closed after the merge.
func (e *Env) runSharded(o accel.Options, r *Runner) *accel.Report {
	var inv *obs.Invariants
	if o.Obs == nil && testing.Testing() {
		ob := obs.NewInvariantsOnly()
		o.Obs = ob
		inv = ob.Inv
	}
	so := accel.ShardedOptions{
		Options:         o,
		Shards:          r.Shards(),
		Policy:          r.ShardPolicy(),
		Workers:         r.Workers(),
		CheckpointEvery: r.CheckpointEvery(),
	}
	sys, err := accel.NewSharded(e.Aligner, so)
	if err != nil {
		panic(err) // options are constructed internally; invalid means a bug
	}
	rep := sys.Run(e.Reads)
	if inv != nil {
		if err := inv.Err(); err != nil {
			panic(fmt.Sprintf("experiments: scheduler invariant violated (%s): %v", sys.Describe(), err))
		}
	}
	return rep
}

// softwareRPS returns the software-pipeline throughput under the
// runner's policy: the pinned deterministic value when set, otherwise
// the measured multi-threaded wall-clock rate.
func (e *Env) softwareRPS(r *Runner) float64 {
	if r != nil && r.swRPS > 0 {
		return r.swRPS
	}
	_, rps := e.Aligner.AlignAll(e.Reads, 0)
	return rps
}
