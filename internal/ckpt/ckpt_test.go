package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sample() *Checkpoint {
	var e Encoder
	e.Section("engine")
	e.PutI64(1234)
	e.PutBool(true)
	e.PutF64(3.5)
	e.PutStr("su")
	st := e.Bytes()
	return &Checkpoint{
		Version:      Version,
		Shard:        2,
		Cycle:        10_000,
		Fired:        987_654,
		Seq:          42,
		WorkloadHash: 0xdeadbeef,
		OptionsHash:  0xfeedface,
		PlanHash:     0x1234,
		FeedLog:      []FeedRec{{Fired: 0, N: 100}, {Fired: 55, N: 7}},
		State:        st,
		StateHash:    fnvSum(st),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	c := sample()
	b := c.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", c, got)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatal("re-encode is not byte-identical")
	}
	if c.Hash() != got.Hash() {
		t.Fatal("hash changed across round trip")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	t.Parallel()
	b := sample().Encode()
	// Flip one byte in every position: magic, header, state, trailer.
	for _, pos := range []int{0, 9, 40, len(b) - 20, len(b) - 1} {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Error("truncated checkpoint not detected")
	}
	if _, err := Decode(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing garbage not detected")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input not detected")
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	t.Parallel()
	c := sample()
	c.Version = Version + 1
	if _, err := Decode(c.Encode()); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "shard0.ckpt")
	c := sample()
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDigestDeterministicAndOrderSensitive(t *testing.T) {
	t.Parallel()
	var a, b, c Digest
	a.I64(1)
	a.I64(2)
	b.I64(1)
	b.I64(2)
	c.I64(2)
	c.I64(1)
	if a.Sum() != b.Sum() {
		t.Error("same fold sequence, different digest")
	}
	if a.Sum() == c.Sum() {
		t.Error("order-insensitive digest would mask reordering bugs")
	}
	var z Digest
	if z.Sum() != 0 {
		t.Error("empty digest must be 0")
	}
}

func TestEncoderSectionsDisambiguate(t *testing.T) {
	t.Parallel()
	// Two different (section, value) splittings must not collide:
	// the length-prefixed section marker prevents ambiguity.
	var e1, e2 Encoder
	e1.Section("ab")
	e1.PutStr("c")
	e2.Section("a")
	e2.PutStr("bc")
	if bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("encoder framing is ambiguous")
	}
}
