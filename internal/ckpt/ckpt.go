// Package ckpt implements versioned, canonical, hash-guarded
// checkpoints of simulator state. A checkpoint is a verified
// synchronization point: the simulator serializes a canonical
// inventory of its scheduler state (unit states, queues, event-heap
// descriptors, fault-injector arming, observability ledgers) into a
// byte string guarded by an FNV-1a digest. Restore re-derives the
// live state by deterministic re-execution to the checkpoint's exact
// fired-event count and then proves equivalence by re-snapshotting
// and byte-comparing — so a restored run is byte-identical to the
// uninterrupted run by construction, not by hope.
//
// The package is a leaf: it imports only the standard library, so
// every simulator layer (sim, fault, coordinator, su, eu, mem,
// seedsched, accel) can depend on it without cycles.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
)

// Wire constants. The magic pins the file type; the version gates
// compatibility: Decode rejects any version it does not know how to
// interpret, because a checkpoint is only useful if the simulator
// that restores it reproduces the writer's semantics exactly.
const (
	magic = "NVWACKPT"
	// Version is the current checkpoint wire version. Bump it on any
	// change to the state inventory or encoding layout; there is no
	// cross-version migration — determinism across versions cannot be
	// guaranteed, so old checkpoints are rejected rather than misread.
	Version = 1
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FeedRec records one Feed call: N reads were appended when the
// engine had fired exactly Fired events. Replay re-issues each feed
// at the same fired-event position, which makes mid-cycle feeds exact
// (cycle alone cannot order a feed between two same-cycle events).
type FeedRec struct {
	Fired int64
	N     int64
}

// Checkpoint is one snapshot of a System. The three hashes bind the
// checkpoint to its inputs: WorkloadHash to the fed reads,
// OptionsHash to the configuration, PlanHash to the fault plan.
// Restore refuses a checkpoint whose hashes do not match the
// rebuilt system, because replay under different inputs would
// silently diverge.
type Checkpoint struct {
	Version uint32
	// Shard is the shard index the snapshot was taken in (0 when
	// unsharded); recovery uses it to route a crashed shard's
	// checkpoint back to the right partition.
	Shard int32

	// Cycle, Fired and Seq pin the engine position: current cycle,
	// total events fired, and next sequence number.
	Cycle int64
	Fired int64
	Seq   int64

	WorkloadHash uint64
	OptionsHash  uint64
	PlanHash     uint64

	// FeedLog replays incremental Feed calls at their exact
	// fired-event positions.
	FeedLog []FeedRec

	// State is the canonical encoded state inventory; StateHash is
	// its FNV-1a digest (redundant with the trailer, but lets callers
	// compare inventories without re-hashing).
	State     []byte
	StateHash uint64
}

// Encode serializes the checkpoint into the guarded wire format:
// magic, fixed-width big-endian fields, then an FNV-1a trailer over
// everything before it.
func (c *Checkpoint) Encode() []byte {
	var e Encoder
	e.raw([]byte(magic))
	e.PutU64(uint64(c.Version)<<32 | uint64(uint32(c.Shard)))
	e.PutI64(c.Cycle)
	e.PutI64(c.Fired)
	e.PutI64(c.Seq)
	e.PutU64(c.WorkloadHash)
	e.PutU64(c.OptionsHash)
	e.PutU64(c.PlanHash)
	e.PutI64(int64(len(c.FeedLog)))
	for _, f := range c.FeedLog {
		e.PutI64(f.Fired)
		e.PutI64(f.N)
	}
	e.PutI64(int64(len(c.State)))
	e.raw(c.State)
	e.PutU64(c.StateHash)
	e.PutU64(e.Sum64()) // trailer guard
	return e.Bytes()
}

// Hash returns the FNV-1a digest of the full encoded checkpoint —
// the resume identity used to key caches so a resumed run never
// aliases a fresh run.
func (c *Checkpoint) Hash() uint64 {
	return fnvSum(c.Encode())
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("ckpt: truncated at offset %d (want %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u64() uint64 {
	s := d.raw(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

// Decode parses and verifies a checkpoint: magic, trailer digest,
// version, and state-digest integrity. Any mismatch is an error — a
// corrupt or foreign checkpoint must never replay.
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) < len(magic)+8 {
		return nil, errors.New("ckpt: too short to be a checkpoint")
	}
	if string(b[:len(magic)]) != magic {
		return nil, errors.New("ckpt: bad magic (not a checkpoint file)")
	}
	body, trailer := b[:len(b)-8], binary.BigEndian.Uint64(b[len(b)-8:])
	if got := fnvSum(body); got != trailer {
		return nil, fmt.Errorf("ckpt: checksum mismatch (file %#x, computed %#x): checkpoint corrupt", trailer, got)
	}
	d := &decoder{b: body, off: len(magic)}
	c := &Checkpoint{}
	vs := d.u64()
	c.Version = uint32(vs >> 32)
	c.Shard = int32(uint32(vs))
	if d.err == nil && c.Version != Version {
		return nil, fmt.Errorf("ckpt: version %d not supported (this build writes version %d)", c.Version, Version)
	}
	c.Cycle = d.i64()
	c.Fired = d.i64()
	c.Seq = d.i64()
	c.WorkloadHash = d.u64()
	c.OptionsHash = d.u64()
	c.PlanHash = d.u64()
	nFeed := d.i64()
	if d.err == nil && (nFeed < 0 || nFeed > int64(len(body))) {
		return nil, fmt.Errorf("ckpt: implausible feed-log length %d", nFeed)
	}
	for i := int64(0); i < nFeed && d.err == nil; i++ {
		c.FeedLog = append(c.FeedLog, FeedRec{Fired: d.i64(), N: d.i64()})
	}
	nState := d.i64()
	if d.err == nil && (nState < 0 || nState > int64(len(body))) {
		return nil, fmt.Errorf("ckpt: implausible state length %d", nState)
	}
	if d.err == nil {
		c.State = append([]byte(nil), d.raw(int(nState))...)
	}
	c.StateHash = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after checkpoint body", len(body)-d.off)
	}
	if got := fnvSum(c.State); got != c.StateHash {
		return nil, fmt.Errorf("ckpt: state digest mismatch (recorded %#x, computed %#x)", c.StateHash, got)
	}
	return c, nil
}

// WriteFile atomically persists an encoded checkpoint: write to a
// temp file in the target directory, then rename. A crash mid-write
// leaves either the old checkpoint or none — never a torn one.
func (c *Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, c.Encode(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads and verifies a checkpoint from disk.
func ReadFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Encoder builds the canonical state inventory. All integers are
// fixed-width big-endian so the byte string is platform-independent;
// sections carry their name so a decode-for-diff tool (and a human
// reading a hex dump) can attribute a divergence to a component.
type Encoder struct {
	buf []byte
}

func (e *Encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

// Section marks the start of a component's state.
func (e *Encoder) Section(name string) { e.PutStr("§" + name) }

// PutBool appends a bool as one byte.
func (e *Encoder) PutBool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutInt appends an int as a fixed-width int64.
func (e *Encoder) PutInt(v int) { e.PutI64(int64(v)) }

// PutI64 appends a big-endian int64.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutU64 appends a big-endian uint64.
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutF64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutStr appends a length-prefixed string.
func (e *Encoder) PutStr(s string) {
	e.PutU64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Sum64 returns the FNV-1a digest of the accumulated encoding.
func (e *Encoder) Sum64() uint64 { return fnvSum(e.buf) }

// Digest folds values into a running FNV-1a hash — used to summarize
// bulk arrays (per-read results, busy intervals) where storing every
// element in the inventory would dominate checkpoint size while a
// digest detects divergence just as well.
type Digest struct {
	h       uint64
	started bool
}

func (d *Digest) fold(v uint64) {
	if !d.started {
		d.h = fnvOffset
		d.started = true
	}
	for shift := 56; shift >= 0; shift -= 8 {
		d.h = (d.h ^ (v >> uint(shift) & 0xff)) * fnvPrime
	}
}

// I64 folds an int64 into the digest.
func (d *Digest) I64(v int64) { d.fold(uint64(v)) }

// U64 folds a uint64 into the digest.
func (d *Digest) U64(v uint64) { d.fold(v) }

// F64 folds a float64's bit pattern into the digest.
func (d *Digest) F64(v float64) { d.fold(math.Float64bits(v)) }

// Sum returns the digest value (0 if nothing was folded, so an empty
// array digests identically everywhere).
func (d *Digest) Sum() uint64 {
	if !d.started {
		return 0
	}
	return d.h
}

func fnvSum(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}
