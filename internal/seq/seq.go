// Package seq provides compact DNA sequence representations shared by
// every other package in the repository.
//
// Bases are stored in a 2-bit code (A=0, C=1, G=2, T=3), the same code
// the FM-index, the hash index, and the systolic arrays operate on.
// The sentinel used by suffix-array construction is represented outside
// the code space.
package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base is a 2-bit encoded nucleotide: A=0, C=1, G=2, T=3.
type Base = byte

// Alphabet size of the 2-bit DNA code.
const AlphabetSize = 4

const baseLetters = "ACGT"

// EncodeBase converts an ASCII nucleotide to its 2-bit code.
// Lower-case letters are accepted. Any non-ACGT letter (e.g. N) maps to
// A; real aligners randomise Ns, but a deterministic mapping keeps the
// simulator reproducible.
func EncodeBase(c byte) Base {
	switch c {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return 0
	}
}

// DecodeBase converts a 2-bit code back to its ASCII letter.
func DecodeBase(b Base) byte { return baseLetters[b&3] }

// Complement returns the Watson-Crick complement of a 2-bit base.
// In the 2-bit code the complement is simply 3-b.
func Complement(b Base) Base { return 3 - (b & 3) }

// Seq is an unpacked 2-bit coded DNA sequence (one base per byte).
// It is the working representation used by alignment kernels; Packed is
// the storage representation used by indexes.
type Seq []Base

// Encode converts an ASCII string to a Seq.
func Encode(s string) Seq {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = EncodeBase(s[i])
	}
	return out
}

// String renders the sequence as ASCII letters.
func (s Seq) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		b.WriteByte(DecodeBase(c))
	}
	return b.String()
}

// RevComp returns a newly allocated reverse complement of s.
func (s Seq) RevComp() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[len(s)-1-i] = Complement(c)
	}
	return out
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two sequences contain the same bases.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Random returns a uniformly random sequence of length n drawn from rng.
func Random(rng *rand.Rand, n int) Seq {
	out := make(Seq, n)
	for i := range out {
		out[i] = Base(rng.Intn(AlphabetSize))
	}
	return out
}

// Packed stores a DNA sequence at 2 bits per base (4 bases per byte),
// the layout used by on-accelerator tables. The zero value is an empty
// sequence.
type Packed struct {
	data []byte
	n    int
}

// Pack converts an unpacked sequence into packed form.
func Pack(s Seq) *Packed {
	p := &Packed{data: make([]byte, (len(s)+3)/4), n: len(s)}
	for i, c := range s {
		p.data[i>>2] |= (c & 3) << uint((i&3)*2)
	}
	return p
}

// Len returns the number of bases stored.
func (p *Packed) Len() int { return p.n }

// Bytes returns the underlying packed bytes (4 bases per byte,
// little-endian within the byte). Callers must not modify it.
func (p *Packed) Bytes() []byte { return p.data }

// At returns the i-th base.
func (p *Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("seq: index %d out of range [0,%d)", i, p.n))
	}
	return (p.data[i>>2] >> uint((i&3)*2)) & 3
}

// Slice unpacks bases [beg, end) into a fresh Seq. Bounds are clamped
// to the sequence, so callers may pass windows that overhang the ends.
func (p *Packed) Slice(beg, end int) Seq {
	if beg < 0 {
		beg = 0
	}
	if end > p.n {
		end = p.n
	}
	if beg >= end {
		return Seq{}
	}
	out := make(Seq, end-beg)
	for i := beg; i < end; i++ {
		out[i-beg] = (p.data[i>>2] >> uint((i&3)*2)) & 3
	}
	return out
}

// Unpack returns the whole sequence in unpacked form.
func (p *Packed) Unpack() Seq { return p.Slice(0, p.n) }

// Append adds bases to the end of the packed sequence.
func (p *Packed) Append(s Seq) {
	for _, c := range s {
		i := p.n
		if i>>2 == len(p.data) {
			p.data = append(p.data, 0)
		}
		p.data[i>>2] |= (c & 3) << uint((i&3)*2)
		p.n++
	}
}

// GC returns the fraction of G/C bases in s; 0 for an empty sequence.
func GC(s Seq) float64 {
	if len(s) == 0 {
		return 0
	}
	gc := 0
	for _, c := range s {
		if c == 1 || c == 2 {
			gc++
		}
	}
	return float64(gc) / float64(len(s))
}
