package seq

import (
	"bytes"
	"testing"
)

// FuzzSeqPackRoundTrip checks the 2-bit packed representation against
// the unpacked one on arbitrary byte input: packing then unpacking is
// the identity (after masking to the code space), random access and
// window slicing agree with the unpacked sequence, and incremental
// Append reproduces whole-sequence Pack byte for byte.
func FuzzSeqPackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 3, 3, 3, 3})
	f.Add([]byte("ACGTACGTACGT"))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			raw = raw[:1<<16]
		}
		// Arbitrary bytes mask into the 2-bit code space, exactly as
		// Pack stores them.
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}

		p := Pack(s)
		if p.Len() != len(s) {
			t.Fatalf("Len = %d, want %d", p.Len(), len(s))
		}
		if got := p.Unpack(); !got.Equal(s) {
			t.Fatalf("Unpack round trip diverges:\n got %v\nwant %v", got, s)
		}
		for i := range s {
			if p.At(i) != s[i] {
				t.Fatalf("At(%d) = %d, want %d", i, p.At(i), s[i])
			}
		}
		// Window slicing with overhanging bounds must clamp, matching
		// the unpacked slice.
		for _, w := range [][2]int{{0, len(s)}, {-3, 2}, {len(s) / 2, len(s) + 5}, {1, 1}, {len(s), len(s) + 1}} {
			got := p.Slice(w[0], w[1])
			lo, hi := w[0], w[1]
			if lo < 0 {
				lo = 0
			}
			if hi > len(s) {
				hi = len(s)
			}
			var want Seq
			if lo < hi {
				want = s[lo:hi]
			} else {
				want = Seq{}
			}
			if !got.Equal(want) {
				t.Fatalf("Slice(%d,%d) diverges", w[0], w[1])
			}
		}
		// Incremental append equals whole-sequence pack.
		mid := len(s) / 2
		inc := Pack(s[:mid])
		inc.Append(s[mid:])
		if inc.Len() != p.Len() || !bytes.Equal(inc.Bytes(), p.Bytes()) {
			t.Fatalf("Append-built packing diverges from Pack")
		}
		// Double reverse complement is the identity, and RevComp
		// composes with packing.
		if !s.RevComp().RevComp().Equal(s) {
			t.Fatal("RevComp is not an involution")
		}
		if got := Pack(s.RevComp()).Unpack().RevComp(); !got.Equal(s) {
			t.Fatal("packed RevComp round trip diverges")
		}
	})
}
