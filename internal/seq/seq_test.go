package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBase(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   byte
		want Base
	}{
		{'A', 0}, {'C', 1}, {'G', 2}, {'T', 3},
		{'a', 0}, {'c', 1}, {'g', 2}, {'t', 3},
		{'N', 0}, {'x', 0},
	}
	for _, c := range cases {
		if got := EncodeBase(c.in); got != c.want {
			t.Errorf("EncodeBase(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for b := Base(0); b < 4; b++ {
		if got := EncodeBase(DecodeBase(b)); got != b {
			t.Errorf("round trip of base %d gave %d", b, got)
		}
	}
}

func TestComplement(t *testing.T) {
	t.Parallel()
	pairs := [][2]byte{{'A', 'T'}, {'C', 'G'}, {'G', 'C'}, {'T', 'A'}}
	for _, p := range pairs {
		if got := DecodeBase(Complement(EncodeBase(p[0]))); got != p[1] {
			t.Errorf("complement of %q = %q, want %q", p[0], got, p[1])
		}
	}
}

func TestEncodeString(t *testing.T) {
	t.Parallel()
	s := Encode("ACGTACGT")
	if s.String() != "ACGTACGT" {
		t.Fatalf("round trip failed: %q", s.String())
	}
}

func TestRevComp(t *testing.T) {
	t.Parallel()
	s := Encode("AACGT")
	rc := s.RevComp()
	if rc.String() != "ACGTT" {
		t.Fatalf("RevComp = %q, want ACGTT", rc.String())
	}
}

func TestRevCompInvolution(t *testing.T) {
	t.Parallel()
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		return s.RevComp().RevComp().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		return Pack(s).Unpack().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedAt(t *testing.T) {
	t.Parallel()
	s := Encode("GATTACA")
	p := Pack(s)
	if p.Len() != 7 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := range s {
		if p.At(i) != s[i] {
			t.Errorf("At(%d) = %d, want %d", i, p.At(i), s[i])
		}
	}
}

func TestPackedAtPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	Pack(Encode("ACGT")).At(4)
}

func TestPackedSliceClamps(t *testing.T) {
	t.Parallel()
	p := Pack(Encode("ACGTACGT"))
	if got := p.Slice(-5, 100).String(); got != "ACGTACGT" {
		t.Errorf("clamped slice = %q", got)
	}
	if got := p.Slice(2, 6).String(); got != "GTAC" {
		t.Errorf("Slice(2,6) = %q", got)
	}
	if got := p.Slice(6, 2); len(got) != 0 {
		t.Errorf("inverted slice should be empty, got %q", got.String())
	}
}

func TestPackedAppend(t *testing.T) {
	t.Parallel()
	p := Pack(Encode("ACG"))
	p.Append(Encode("TTT"))
	if got := p.Unpack().String(); got != "ACGTTT" {
		t.Fatalf("Append result %q", got)
	}
	// Append on empty packed sequence.
	var q Packed
	q.Append(Encode("AC"))
	if got := q.Unpack().String(); got != "AC" {
		t.Fatalf("Append to zero value gave %q", got)
	}
}

func TestRandomLengthAndRange(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	for _, c := range s {
		if c > 3 {
			t.Fatalf("base out of range: %d", c)
		}
	}
}

func TestGC(t *testing.T) {
	t.Parallel()
	if got := GC(Encode("GGCC")); got != 1 {
		t.Errorf("GC(GGCC) = %v", got)
	}
	if got := GC(Encode("AATT")); got != 0 {
		t.Errorf("GC(AATT) = %v", got)
	}
	if got := GC(Encode("ACGT")); got != 0.5 {
		t.Errorf("GC(ACGT) = %v", got)
	}
	if got := GC(nil); got != 0 {
		t.Errorf("GC(nil) = %v", got)
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	s := Encode("ACGT")
	c := s.Clone()
	c[0] = 3
	if s[0] != 0 {
		t.Fatal("Clone aliases original")
	}
}
