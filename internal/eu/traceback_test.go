package eu

import (
	"testing"

	"nvwa/internal/core"
	"nvwa/internal/pipeline"
	"nvwa/internal/seq"
	"nvwa/internal/systolic"
)

// stubExtender returns a canned extension regardless of input, so
// tests can pin the cycle model against hand-computed spans.
type stubExtender struct {
	ext  core.Extension
	cost pipeline.ExtendCost
}

func (s *stubExtender) ExtendHitCost(oriented seq.Seq, h core.Hit) (core.Extension, pipeline.ExtendCost) {
	e := s.ext
	e.Hit = h
	return e, s.cost
}

func (s *stubExtender) Options() pipeline.Options { return pipeline.DefaultOptions() }

// The headline regression: the traceback walk must charge the
// alignment's *read span*, not the seed length. A full-coverage
// alignment walks the whole read; the old seed-length charge
// undercharged it by the flank lengths. Cycle counts are pinned
// exactly for both a full-coverage alignment and a z-dropped stub.
func TestExecuteTracebackChargesAlignedReadSpan(t *testing.T) {
	t.Parallel()
	h := core.Hit{ReadBeg: 40, ReadEnd: 59, RefPos: 1040, ReadLen: 100}
	read := make(seq.Seq, 100)

	// Full coverage: both flanks extend to the read edges.
	full := &stubExtender{
		ext: core.Extension{
			RefBeg: 1000, RefEnd: 1100, // refSpan 100
			ReadBeg: 0, ReadEnd: 100, // readSpan 100
		},
		cost: pipeline.ExtendCost{LeftRows: 40, LeftQ: 40, RightRows: 41, RightQ: 41},
	}
	// Z-dropped stub: flanks die after two rows each.
	stub := &stubExtender{
		ext: core.Extension{
			RefBeg: 1038, RefEnd: 1061, // refSpan 23
			ReadBeg: 38, ReadEnd: 61, // readSpan 23
		},
		cost: pipeline.ExtendCost{LeftRows: 2, LeftQ: 2, RightRows: 2, RightQ: 2},
	}

	// CostModel zero value: no load cost, storage-free traceback — the
	// walk is exactly TracebackLatency(refSpan, readSpan).
	uFull := New(0, 3, 128, full, CostModel{})
	_, done := uFull.Execute(0, read, h)
	// Task: 19-base seed + 40 + 41 flank rows = 100 rows, Q = seed.
	fill := int64(systolic.Latency(100, h.SeedLen(), 128))
	if wantFill := int64(227); fill != wantFill {
		t.Fatalf("fill precondition drifted: %d, want %d", fill, wantFill)
	}
	if want := fill + int64(systolic.TracebackLatency(100, 100)); done != want {
		t.Fatalf("full-coverage completion %d, want %d (fill %d + walk over refSpan+readSpan %d)",
			done, want, fill, want-fill)
	}
	if uFull.TracebackCycles() != 200 {
		t.Fatalf("full-coverage traceback charged %d cycles, want 200 (100 ref + 100 read)",
			uFull.TracebackCycles())
	}

	uStub := New(1, 3, 128, stub, CostModel{})
	_, done = uStub.Execute(0, read, h)
	fill = int64(systolic.Latency(23, h.SeedLen(), 128))
	if want := fill + int64(systolic.TracebackLatency(23, 23)); done != want {
		t.Fatalf("z-dropped completion %d, want %d", done, want)
	}
	if uStub.TracebackCycles() != 46 {
		t.Fatalf("z-dropped traceback charged %d cycles, want 46 (23 ref + 23 read)",
			uStub.TracebackCycles())
	}

	// The buggy charge (refSpan + seed length) for the full-coverage
	// case would have been 119 — assert we are nowhere near it.
	if c := uFull.TracebackCycles(); c == int64(systolic.TracebackLatency(100, h.SeedLen())) {
		t.Fatalf("traceback still charges the seed length (%d cycles)", c)
	}
}

// The pointer-matrix model must spill tasks whose computed cells
// exceed the array SRAM and charge the read-out on top of the walk.
func TestExecuteTracebackSpillsLargeMatrices(t *testing.T) {
	t.Parallel()
	h := core.Hit{ReadBeg: 100, ReadEnd: 400, RefPos: 5000, ReadLen: 1000}
	read := make(seq.Seq, 1000)
	m := systolic.DefaultTracebackModel()
	// 300 flank rows × 300 columns each side ≈ 180k cells: over the
	// 64k-cell SRAM budget of the default model.
	big := &stubExtender{
		ext: core.Extension{
			RefBeg: 4700, RefEnd: 5700,
			ReadBeg: 0, ReadEnd: 1000,
		},
		cost: pipeline.ExtendCost{LeftRows: 300, LeftQ: 300, RightRows: 300, RightQ: 300},
	}
	u := New(0, 3, 128, big, CostModel{Traceback: m})
	_, done := u.Execute(0, read, h)
	if u.TracebackSpills() != 1 {
		t.Fatalf("large matrix did not spill (spills=%d)", u.TracebackSpills())
	}
	cells := 300*300 + 300*300 + h.SeedLen()
	want := m.Cost(cells, 1000+1000)
	if u.TracebackSpillCycles() != want.SpillCycles || want.SpillCycles == 0 {
		t.Fatalf("spill read-out charged %d cycles, want %d (non-zero)",
			u.TracebackSpillCycles(), want.SpillCycles)
	}
	if u.TracebackCycles() != want.Cycles {
		t.Fatalf("traceback charged %d cycles, want %d", u.TracebackCycles(), want.Cycles)
	}
	fill := int64(systolic.Latency(h.SeedLen()+600, h.SeedLen(), 128))
	if done != fill+want.Cycles {
		t.Fatalf("completion %d, want fill %d + traceback %d", done, fill, want.Cycles)
	}
}

// PE-occupancy audit: busyPECycles' denominator and the obs.EUExtend
// busy interval must agree — both span load + fill + traceback.
func TestExecuteOccupancyMatchesBusyInterval(t *testing.T) {
	t.Parallel()
	h := core.Hit{ReadBeg: 40, ReadEnd: 59, RefPos: 1040, ReadLen: 100}
	read := make(seq.Seq, 100)
	ext := &stubExtender{
		ext: core.Extension{
			RefBeg: 1000, RefEnd: 1100,
			ReadBeg: 0, ReadEnd: 100,
		},
		cost: pipeline.ExtendCost{LeftRows: 40, LeftQ: 40, RightRows: 41, RightQ: 41},
	}
	u := New(0, 3, 128, ext, DefaultCostModel())
	var total int64
	for i := 0; i < 3; i++ {
		now := int64(i * 1000)
		_, done := u.Execute(now, read, h)
		total += done - now // the exact interval EUExtend reports
	}
	if u.OccupancyCycles() != total {
		t.Fatalf("occupancy %d != sum of busy intervals %d", u.OccupancyCycles(), total)
	}
	// PEUtilization normalizes by that same occupancy.
	cells := 3 * (40*40 + 41*41 + h.SeedLen())
	want := float64(cells) / float64(128*total)
	if got := u.PEUtilization(); got != want {
		t.Fatalf("PEUtilization %v, want cells/(PEs×occupancy) = %v", got, want)
	}
}
