// Package eu models NvWa's extension units: Darwin-style Smith-
// Waterman systolic arrays that execute the seed-extension phase. A
// unit runs the cycle-exact systolic model of package systolic for
// each of the hit's two extension sub-tasks (left and right of the
// seed), so both its results and its latency are faithful: scores
// equal the software pipeline's, and the matrix-fill cost follows the
// paper's Formula 3 for the unit's PE count.
package eu

import (
	"nvwa/internal/ckpt"
	"nvwa/internal/core"
	"nvwa/internal/obs"
	"nvwa/internal/pipeline"
	"nvwa/internal/seq"
	"nvwa/internal/sim"
	"nvwa/internal/systolic"
)

// CostModel adds the fixed per-task costs around the matrix fill.
type CostModel struct {
	// LoadCycles covers loading the hit's query and reference windows
	// into the array.
	LoadCycles int64
	// Traceback sizes the array's pointer-matrix storage and read-out
	// path. The zero value is the storage-free footnote-4 walk over
	// the alignment spans; DefaultTracebackModel adds per-array SRAM
	// capacity and HBM spill read-out.
	Traceback systolic.TracebackModel
}

// DefaultCostModel returns the calibrated fixed costs.
func DefaultCostModel() CostModel {
	return CostModel{LoadCycles: 8, Traceback: systolic.DefaultTracebackModel()}
}

// Extender is the functional seed-extension engine a unit replays:
// normally the software pipeline itself (*pipeline.Aligner), but any
// implementation returning the same deterministic extension result and
// processed-extent accounting works — e.g. the accelerator's memo
// cache, which precomputes every extension once per workload and lets
// the cycle-accurate event loop replay only the cost model.
type Extender interface {
	// ExtendHitCost extends one hit and reports the DP extents the
	// cycle model charges Formula 3 for.
	ExtendHitCost(oriented seq.Seq, h core.Hit) (core.Extension, pipeline.ExtendCost)
	// Options exposes the aligner options (scoring, band) the unit's
	// systolic model is parameterised by.
	Options() pipeline.Options
}

// Unit is one extension unit.
type Unit struct {
	id      int
	class   int
	arr     systolic.Array
	aligner Extender
	extBand int // cached Options().ExtBand: read per task, copied once
	cost    CostModel
	state   core.UnitState
	obs     *obs.Observer

	// Tracker records busy intervals for utilization figures.
	Tracker sim.BusyTracker

	// counters
	tasks        int
	fillCycles   int64
	occupancy    int64 // load + fill + traceback, the full array-busy span
	busyPECycles int64
	tbCycles     int64
	tbSpills     int64
	tbSpillCyc   int64
}

// New builds an extension unit of the given class with pes processing
// elements.
func New(id, class, pes int, aligner Extender, cost CostModel) *Unit {
	return &Unit{
		id:      id,
		class:   class,
		arr:     systolic.Array{PEs: pes, Scoring: aligner.Options().Scoring},
		aligner: aligner,
		extBand: aligner.Options().ExtBand,
		cost:    cost,
	}
}

// ID returns the unit's global index.
func (u *Unit) ID() int { return u.id }

// Class returns the unit's class index in the hybrid pool.
func (u *Unit) Class() int { return u.class }

// PEs implements the Table III pe_number signal.
func (u *Unit) PEs() int { return u.arr.PEs }

// AttachObs wires an observer into the unit so each extension task
// emits a trace span and metric updates. A nil observer detaches.
func (u *Unit) AttachObs(o *obs.Observer) { u.obs = o }

// State implements the Table III control interface.
func (u *Unit) State() core.UnitState { return u.state }

// Stop parks the unit.
func (u *Unit) Stop() { u.state = core.Stopped }

// SetBusy transitions the unit to busy at cycle now.
func (u *Unit) SetBusy(now int64) {
	u.state = core.Busy
	u.Tracker.SetBusy(now)
}

// SetIdle transitions the unit to idle at cycle now.
func (u *Unit) SetIdle(now int64) {
	u.state = core.Idle
	u.Tracker.SetIdle(now)
}

// Tasks returns how many hits the unit has extended.
func (u *Unit) Tasks() int { return u.tasks }

// PEUtilization returns the array's internal PE occupancy across all
// executed tasks: busy PE-cycles over PEs × the full array-busy span
// (load + fill + traceback). The denominator matches the busy
// interval Execute reports through obs.EUExtend cycle for cycle, so
// the trace timeline and the utilization figure tell the same story:
// PEs sit idle while operands load and while the pointer walk reads
// the matrix back out.
func (u *Unit) PEUtilization() float64 {
	if u.occupancy == 0 {
		return 0
	}
	return float64(u.busyPECycles) / float64(int64(u.arr.PEs)*u.occupancy)
}

// OccupancyCycles returns the total array-busy cycles across executed
// tasks (load + fill + traceback) — the sum of the obs.EUExtend busy
// intervals.
func (u *Unit) OccupancyCycles() int64 { return u.occupancy }

// TracebackCycles returns the total traceback cycles (pointer walk +
// spill read-out) across executed tasks.
func (u *Unit) TracebackCycles() int64 { return u.tbCycles }

// TracebackSpills returns how many tasks overflowed the array's
// pointer-matrix SRAM.
func (u *Unit) TracebackSpills() int64 { return u.tbSpills }

// TracebackSpillCycles returns the cycles spent streaming spilled
// pointers back from HBM.
func (u *Unit) TracebackSpillCycles() int64 { return u.tbSpillCyc }

// Execute extends one hit starting at cycle now. oriented must be
// pipeline.Orient(read, h.Rev). It returns the extension result —
// bit-identical to the software pipeline's ExtendHit — and the
// completion cycle. The caller manages busy/idle state.
//
// Timing follows the paper's Formula 3 over the task the array
// actually executes, GACT-style: the seed span streams through the
// array with both flank extensions appended, and a flank stops
// occupying the array once the z-drop heuristic kills it. A strong
// full-coverage chain is therefore a long task (roughly the read
// length), while the numerous spurious repeat-fragment chains
// terminate after a handful of rows and form the short-task mass the
// Hybrid Units Strategy sizes its small arrays for.
func (u *Unit) Execute(now int64, oriented seq.Seq, h core.Hit) (core.Extension, int64) {
	ext, cost := u.aligner.ExtendHitCost(oriented, h)
	r, _ := cost.TaskDims(h, u.extBand)
	// The hit span (the paper's hit_len) sets the array residency —
	// how many P-wide query blocks stream the reference — while the
	// flank probes extend the streamed reference (r includes the rows
	// the z-drop heuristic actually processed). This is what makes
	// Formula 3 with R=Q=hit_len the right sizing rule, exactly as the
	// paper applies it in Fig. 8/9.
	fill := int64(systolic.Latency(r, h.SeedLen(), u.arr.PEs))
	u.fillCycles += fill
	// PE-occupancy accounting: processed DP cells over the array-time
	// the task held. Each computed cell also banks a traceback pointer.
	cells := cost.LeftRows*cost.LeftQ + cost.RightRows*cost.RightQ + h.SeedLen()
	u.busyPECycles += int64(cells)
	// Traceback walks the task's final alignment path — the *aligned*
	// spans, not the seed span: a z-dropped secondary traces only its
	// short surviving span, a full-coverage alignment the whole read.
	// The pointer-matrix model adds spill read-out when the computed
	// cells overflow the array's pointer SRAM.
	tb := u.cost.Traceback.Cost(cells, ext.RefSpan()+ext.ReadSpan())
	u.tbCycles += tb.Cycles
	u.tbSpillCyc += tb.SpillCycles
	if tb.Spilled {
		u.tbSpills++
	}
	cycles := u.cost.LoadCycles + fill + tb.Cycles
	u.occupancy += cycles
	u.tasks++
	if u.obs != nil {
		u.obs.EUExtend(u.id, u.class, u.arr.PEs, h.SchedLen(), now, now+cycles)
		u.obs.EUTraceback(now, tb.Cycles, ext.RefSpan(), ext.ReadSpan(), tb.Spilled)
	}
	return ext, now + cycles
}

// EncodeState writes the unit's canonical state inventory.
func (u *Unit) EncodeState(enc *ckpt.Encoder) {
	enc.Section("eu.Unit")
	enc.PutInt(u.id)
	enc.PutInt(u.class)
	enc.PutInt(int(u.state))
	enc.PutInt(u.tasks)
	enc.PutI64(u.fillCycles)
	enc.PutI64(u.occupancy)
	enc.PutI64(u.busyPECycles)
	enc.PutI64(u.tbCycles)
	enc.PutI64(u.tbSpills)
	enc.PutI64(u.tbSpillCyc)
	u.Tracker.EncodeState(enc)
}
