package eu

import (
	"testing"

	"nvwa/internal/genome"
	"nvwa/internal/pipeline"
	"nvwa/internal/systolic"
)

func setup(t *testing.T) (*pipeline.Aligner, *genome.Reference) {
	t.Helper()
	ref := genome.Generate(genome.HumanLike(), 50000, 1)
	return pipeline.New(ref.Seq, pipeline.DefaultOptions()), ref
}

func TestExecuteMatchesSoftwareExtension(t *testing.T) {
	t.Parallel()
	a, ref := setup(t)
	reads := genome.Simulate(ref, 40, genome.ShortReadConfig(2))
	units := []*Unit{
		New(0, 0, 16, a, DefaultCostModel()),
		New(1, 1, 32, a, DefaultCostModel()),
		New(2, 2, 64, a, DefaultCostModel()),
		New(3, 3, 128, a, DefaultCostModel()),
	}
	for _, r := range reads {
		hits, _ := a.SeedAndChain(r.ID, r.Seq)
		for hi, h := range hits {
			oriented := pipeline.Orient(r.Seq, h.Rev)
			want := a.ExtendHit(oriented, h)
			u := units[(r.ID+hi)%len(units)]
			got, done := u.Execute(0, oriented, h)
			// The paper's no-loss-of-accuracy property: scores are
			// identical on every PE width.
			if got.Score != want.Score {
				t.Fatalf("read %d hit %d on %d PEs: score %d != software %d",
					r.ID, hi, u.PEs(), got.Score, want.Score)
			}
			// Span may differ only between equal-scoring ties.
			if got.RefBeg != want.RefBeg || got.RefEnd != want.RefEnd {
				if abs(got.RefBeg-want.RefBeg) > 8 || abs(got.RefEnd-want.RefEnd) > 8 {
					t.Fatalf("span [%d,%d) too far from software [%d,%d)",
						got.RefBeg, got.RefEnd, want.RefBeg, want.RefEnd)
				}
			}
			if done <= 0 {
				t.Fatal("non-positive completion")
			}
		}
	}
}

func TestExecuteLatencyFollowsFormula3(t *testing.T) {
	t.Parallel()
	a, ref := setup(t)
	reads := genome.Simulate(ref, 30, genome.ShortReadConfig(3))
	small := New(0, 0, 16, a, CostModel{})
	large := New(1, 3, 128, a, CostModel{})
	for _, r := range reads {
		hits, _ := a.SeedAndChain(r.ID, r.Seq)
		for _, h := range hits {
			oriented := pipeline.Orient(r.Seq, h.Rev)
			// The charged fill covers at least the seed span streaming
			// through the array (Formula 3 with R=Q=span).
			minFill := int64(systolic.Latency(h.SeedLen(), h.SeedLen(), 16))
			_, doneSmall := small.Execute(0, oriented, h)
			_, doneLarge := large.Execute(0, oriented, h)
			if doneSmall < minFill {
				t.Fatalf("small-unit completion %d below Formula 3 floor %d", doneSmall, minFill)
			}
			// Long extensions must be slower on the small unit than on
			// the large one (multiple passes).
			if h.SchedLen() > 64 && doneSmall <= doneLarge {
				t.Errorf("hit len %d: 16-PE done %d not slower than 128-PE %d",
					h.SchedLen(), doneSmall, doneLarge)
			}
			// Short extensions are *latency*-comparable but the large
			// unit wastes PEs; just check both complete.
			_ = doneLarge
		}
	}
}

func TestExecuteAccountsPEUtilization(t *testing.T) {
	t.Parallel()
	a, ref := setup(t)
	reads := genome.Simulate(ref, 20, genome.ShortReadConfig(4))
	u := New(0, 3, 128, a, DefaultCostModel())
	for _, r := range reads {
		hits, _ := a.SeedAndChain(r.ID, r.Seq)
		for _, h := range hits {
			u.Execute(0, pipeline.Orient(r.Seq, h.Rev), h)
		}
	}
	if u.Tasks() == 0 {
		t.Skip("no hits produced")
	}
	util := u.PEUtilization()
	if util <= 0 || util > 1 {
		t.Errorf("PE utilization = %v", util)
	}
	// 101 bp reads have extensions far below 128 bases, so a 128-PE
	// unit must show substantial internal waste.
	if util > 0.9 {
		t.Errorf("128-PE unit utilization %v implausibly high for short hits", util)
	}
}

func TestUnitStateAndAccessors(t *testing.T) {
	t.Parallel()
	a, _ := setup(t)
	u := New(7, 2, 64, a, DefaultCostModel())
	if u.ID() != 7 || u.Class() != 2 || u.PEs() != 64 {
		t.Error("accessors wrong")
	}
	u.SetBusy(5)
	if u.State().String() != "busy" {
		t.Error("SetBusy failed")
	}
	u.SetIdle(9)
	if u.State().String() != "idle" {
		t.Error("SetIdle failed")
	}
	u.Stop()
	if u.State().String() != "stop" {
		t.Error("Stop failed")
	}
	if u.PEUtilization() != 0 {
		t.Error("utilization of fresh unit should be 0")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
