package genome

import (
	"math"
	"testing"
)

func TestPairInsertDistribution(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 60000, 101)
	cfg := DefaultPairConfig(102)
	pairs := SimulatePairs(ref, 600, cfg)
	var sum, sum2 float64
	for _, p := range pairs {
		v := float64(p.TrueInsert)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(len(pairs))
	sd := math.Sqrt(sum2/float64(len(pairs)) - mean*mean)
	if math.Abs(mean-cfg.InsertMean) > 10 {
		t.Errorf("insert mean %.1f, want ~%.0f", mean, cfg.InsertMean)
	}
	if sd < cfg.InsertSD*0.7 || sd > cfg.InsertSD*1.3 {
		t.Errorf("insert sd %.1f, want ~%.0f", sd, cfg.InsertSD)
	}
}

func TestPairFragmentsMatchReference(t *testing.T) {
	t.Parallel()
	// With zero error rates, R1 equals the fragment start and R2 the
	// reverse complement of the fragment end, exactly.
	ref := Generate(HumanLike(), 50000, 103)
	cfg := DefaultPairConfig(104)
	cfg.SubRate, cfg.InsRate, cfg.DelRate = 0, 0, 0
	pairs := SimulatePairs(ref, 50, cfg)
	for i, p := range pairs {
		want1 := ref.Seq[p.R1.TruePos : p.R1.TruePos+cfg.ReadLen]
		if !p.R1.Seq.Equal(want1) {
			t.Fatalf("pair %d: R1 does not match reference", i)
		}
		want2 := ref.Seq[p.R2.TruePos : p.R2.TruePos+cfg.ReadLen].RevComp()
		if !p.R2.Seq.Equal(want2) {
			t.Fatalf("pair %d: R2 does not match revcomp of reference", i)
		}
	}
}

func TestSimulatePairsPanics(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 400, 105)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: reference shorter than max insert")
		}
	}()
	SimulatePairs(ref, 1, DefaultPairConfig(1))
}

func TestGenerateProfilesAreDistinct(t *testing.T) {
	t.Parallel()
	// The Fig. 14 species proxies must produce genuinely different
	// sequences and different repeat statistics under the same seed.
	profiles := []Profile{HumanLike(), ClitarchusLike, ZapusLike, CamelusLike, VenustaLike, ElegansLike}
	seen := map[string]string{}
	for _, p := range profiles {
		ref := Generate(p, 20000, 7)
		head := ref.Seq[:200].String()
		if other, dup := seen[head]; dup {
			t.Fatalf("profiles %s and %s generated identical sequence", p.Name, other)
		}
		seen[head] = p.Name
	}
}

func TestFragmentFractionDrivesMultiMapping(t *testing.T) {
	t.Parallel()
	// More repeat fragments must produce more multi-chain reads — the
	// knob behind the short-hit mass of the Fig. 9(a) distribution.
	base := HumanLike()
	none := base
	none.FragmentFraction = 0
	none.InterspersedFraction = 0
	refFrag := Generate(base, 60000, 9)
	refNone := Generate(none, 60000, 9)
	k := 16
	count := func(ref *Reference) int {
		counts := map[string]int{}
		for i := 0; i+k <= len(ref.Seq); i += 4 {
			counts[ref.Seq[i:i+k].String()]++
		}
		multi := 0
		for _, c := range counts {
			if c > 2 {
				multi++
			}
		}
		return multi
	}
	if count(refFrag) <= count(refNone)*2 {
		t.Errorf("fragments did not raise k-mer multiplicity: %d vs %d", count(refFrag), count(refNone))
	}
}
