package genome

import (
	"fmt"
	"math/rand"
)

// ReadPair is a paired-end fragment: R1 from the forward strand of the
// fragment, R2 from the reverse strand of its far end (FR orientation,
// the standard Illumina library layout).
type ReadPair struct {
	R1, R2 Read
	// TrueInsert is the simulated outer fragment length.
	TrueInsert int
}

// PairConfig extends the read simulator with an insert-size model.
type PairConfig struct {
	SimulatorConfig
	// InsertMean and InsertSD describe the outer fragment length
	// (typical Illumina: 350 +- 50).
	InsertMean, InsertSD float64
}

// DefaultPairConfig returns a 2x101 bp library with 350+-50 inserts.
func DefaultPairConfig(seed int64) PairConfig {
	return PairConfig{SimulatorConfig: ShortReadConfig(seed), InsertMean: 350, InsertSD: 50}
}

// SimulatePairs samples n read pairs from the reference.
func SimulatePairs(ref *Reference, n int, cfg PairConfig) []ReadPair {
	if cfg.ReadLen <= 0 {
		panic("genome: PairConfig.ReadLen must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxInsert := int(cfg.InsertMean + 4*cfg.InsertSD)
	if len(ref.Seq) < maxInsert+2 {
		panic(fmt.Sprintf("genome: reference (%d bp) shorter than max insert %d", len(ref.Seq), maxInsert))
	}
	pairs := make([]ReadPair, n)
	for i := range pairs {
		insert := int(cfg.InsertMean + rng.NormFloat64()*cfg.InsertSD)
		if insert < cfg.ReadLen {
			insert = cfg.ReadLen
		}
		if insert > maxInsert {
			insert = maxInsert
		}
		pos := rng.Intn(len(ref.Seq) - insert - 1)

		// R1: forward strand at the fragment start.
		frag1 := ref.Seq[pos : pos+cfg.ReadLen+1]
		r1 := applyErrors(rng, frag1.Clone(), cfg.SimulatorConfig)
		// R2: reverse strand at the fragment end.
		end := pos + insert
		frag2 := ref.Seq[end-cfg.ReadLen-1 : end]
		r2 := applyErrors(rng, frag2.RevComp(), cfg.SimulatorConfig)

		qual := func() []byte {
			q := make([]byte, cfg.ReadLen)
			for k := range q {
				q[k] = byte('!' + 30 + rng.Intn(10))
			}
			return q
		}
		name := fmt.Sprintf("%s_pair_%d_%d", ref.Name, pos, i)
		pairs[i] = ReadPair{
			R1:         Read{ID: 2 * i, Name: name + "/1", Seq: r1, Qual: qual(), TruePos: pos, TrueRev: false},
			R2:         Read{ID: 2*i + 1, Name: name + "/2", Seq: r2, Qual: qual(), TruePos: end - cfg.ReadLen, TrueRev: true},
			TrueInsert: insert,
		}
	}
	return pairs
}
