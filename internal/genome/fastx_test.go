package genome

import (
	"bytes"
	"strings"
	"testing"
)

func TestFASTARoundTrip(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 500, 8)
	ref.Name = "chrTest"
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, ref); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "chrTest" {
		t.Errorf("name = %q", got.Name)
	}
	if !got.Seq.Equal(ref.Seq) {
		t.Error("sequence does not round trip")
	}
}

func TestReadFASTAFirstRecordOnly(t *testing.T) {
	t.Parallel()
	in := ">one desc\nACGT\nAC\n>two\nGGGG\n"
	ref, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name != "one" || ref.Seq.String() != "ACGTAC" {
		t.Errorf("got %q %q", ref.Name, ref.Seq.String())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	t.Parallel()
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header should fail")
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 5000, 8)
	reads := Simulate(ref, 25, ShortReadConfig(3))
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reads) {
		t.Fatalf("got %d reads, want %d", len(got), len(reads))
	}
	for i := range got {
		if got[i].Name != reads[i].Name {
			t.Errorf("read %d name %q != %q", i, got[i].Name, reads[i].Name)
		}
		if !got[i].Seq.Equal(reads[i].Seq) {
			t.Errorf("read %d sequence mismatch", i)
		}
		if string(got[i].Qual) != string(reads[i].Qual) {
			t.Errorf("read %d quality mismatch", i)
		}
	}
}

func TestWriteFASTQDefaultQual(t *testing.T) {
	t.Parallel()
	reads := []Read{{Name: "r", Seq: []byte{0, 1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "IIII" {
		t.Errorf("default quality = %q", got[0].Qual)
	}
}

func TestReadFASTQErrors(t *testing.T) {
	t.Parallel()
	cases := []string{
		"ACGT\n",                  // no @
		"@r\nACGT\n",              // truncated
		"@r\nACGT\n+\n",           // missing qual
		"@r\nACGT\n+\nIII\n",      // qual length mismatch
		"@r\nACGT\n+\nIIII\n@x\n", // second record truncated
	}
	for i, c := range cases {
		if _, err := ReadFASTQ(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
