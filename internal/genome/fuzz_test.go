package genome

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadFASTQ(f *testing.F) {
	f.Add("@r1\nACGT\n+\nIIII\n")
	f.Add("@r1 desc\nacgtn\n+\n!!!!!\n@r2\nGG\n+\nII\n")
	f.Add("")
	f.Add("@\n\n+\n\n")
	f.Add("@r\nACGT\n+\nIII\n")
	f.Fuzz(func(t *testing.T, in string) {
		reads, err := ReadFASTQ(strings.NewReader(in))
		if err != nil {
			return
		}
		// Parsed reads must round-trip.
		var buf bytes.Buffer
		if err := WriteFASTQ(&buf, reads); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadFASTQ(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(reads) {
			t.Fatalf("round trip changed count: %d -> %d", len(reads), len(again))
		}
		for i := range reads {
			if !again[i].Seq.Equal(reads[i].Seq) {
				t.Fatalf("read %d sequence changed", i)
			}
		}
	})
}

func FuzzReadAssemblyFASTA(f *testing.F) {
	f.Add(">a\nACGT\n>b\nGGTT\n")
	f.Add(">only\nACGTACGT\nACGT\n")
	f.Add("no header\n")
	f.Add(">dup\nAC\n>dup\nGT\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadAssemblyFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		// Invariants: nonempty, offsets consistent, translation total.
		if len(a.Chroms) == 0 {
			t.Fatal("parser returned empty assembly without error")
		}
		total := 0
		for _, c := range a.Chroms {
			total += len(c.Seq)
		}
		if total != a.Len() {
			t.Fatalf("chromosome lengths sum %d != concat %d", total, a.Len())
		}
		for pos := 0; pos < a.Len(); pos += 1 + a.Len()/7 {
			name, local, err := a.Translate(pos)
			if err != nil {
				t.Fatalf("Translate(%d): %v", pos, err)
			}
			off, err := a.Offset(name)
			if err != nil || off+local != pos {
				t.Fatalf("Translate/Offset disagree at %d", pos)
			}
		}
	})
}
