// Package genome synthesises reference genomes and sequencing read sets.
//
// The paper evaluates on GRCh38 + NA12878 and on six DWGSIM-simulated
// read sets. Neither the 3 Gbp human assembly nor real FASTQ archives
// are available in this environment, so this package provides the
// closest synthetic equivalent: a reference generator with controllable
// GC content, tandem repeats, and interspersed (transposon-like)
// repeats — the genome features that create the per-read seeding-time
// and hit-length diversity NvWa's schedulers exploit — plus a
// DWGSIM-like read simulator with substitution and indel errors.
package genome

import (
	"fmt"
	"math/rand"

	"nvwa/internal/seq"
)

// Profile controls the statistical character of a synthetic reference.
// Different species proxies (Fig. 14) use different profiles.
type Profile struct {
	// Name labels the profile (e.g. "H.sapiens-like").
	Name string
	// GC is the target G+C fraction of random background sequence.
	GC float64
	// TandemRepeatFraction is the fraction of the genome covered by
	// short tandem repeats (microsatellite-like).
	TandemRepeatFraction float64
	// InterspersedFraction is the fraction covered by copies of a small
	// family of long repeat elements (LINE/SINE-like). These create
	// multi-hit seeds, the main source of hit-count diversity.
	InterspersedFraction float64
	// RepeatElementLen is the length of each interspersed element.
	RepeatElementLen int
	// RepeatFamilies is the number of distinct interspersed elements.
	RepeatFamilies int
	// RepeatDivergence is the per-base mutation rate applied to each
	// inserted repeat copy, so copies are near- but not exact duplicates.
	RepeatDivergence float64
	// FragmentFraction is the fraction of the genome covered by short
	// (20-80 bp) fragments of the repeat elements — truncated
	// transposon insertions. Reads overlapping a fragment seed short
	// chains at every other copy of the element whose extensions die
	// immediately, producing the numerous short hits that dominate the
	// paper's Fig. 9(a) hit-length distribution.
	FragmentFraction float64
}

// HumanLike mimics the repeat structure of the human genome at reduced
// scale: ~47% of the sequence in repeats, 41% GC, with young
// transposon families at a few percent divergence (the property that
// makes a fraction of reads multi-mapping, which drives the hit-count
// and hit-length diversity NvWa schedules around).
func HumanLike() Profile {
	return Profile{
		Name:                 "H.sapiens-like",
		GC:                   0.41,
		TandemRepeatFraction: 0.05,
		InterspersedFraction: 0.12,
		FragmentFraction:     0.22,
		RepeatElementLen:     600,
		RepeatFamilies:       20,
		RepeatDivergence:     0.025,
	}
}

// Profiles for the Fig. 14 species proxies. The parameters follow the
// coarse repeat-content and GC statistics reported for each assembly;
// what matters for the experiment is that they differ from each other
// and from the human profile, producing distinct hit distributions.
var (
	ClitarchusLike = Profile{Name: "C.hookeri-like", GC: 0.37, TandemRepeatFraction: 0.08, InterspersedFraction: 0.40, FragmentFraction: 0.20, RepeatElementLen: 800, RepeatFamilies: 8, RepeatDivergence: 0.05}
	ZapusLike      = Profile{Name: "Z.hudsonius-like", GC: 0.40, TandemRepeatFraction: 0.06, InterspersedFraction: 0.25, FragmentFraction: 0.14, RepeatElementLen: 500, RepeatFamilies: 10, RepeatDivergence: 0.04}
	CamelusLike    = Profile{Name: "C.dromedarius-like", GC: 0.41, TandemRepeatFraction: 0.04, InterspersedFraction: 0.22, FragmentFraction: 0.12, RepeatElementLen: 550, RepeatFamilies: 9, RepeatDivergence: 0.03}
	VenustaLike    = Profile{Name: "V.ellipsiformis-like", GC: 0.35, TandemRepeatFraction: 0.10, InterspersedFraction: 0.32, FragmentFraction: 0.18, RepeatElementLen: 700, RepeatFamilies: 6, RepeatDivergence: 0.06}
	ElegansLike    = Profile{Name: "C.elegans-like", GC: 0.35, TandemRepeatFraction: 0.04, InterspersedFraction: 0.13, FragmentFraction: 0.09, RepeatElementLen: 400, RepeatFamilies: 7, RepeatDivergence: 0.03}
)

// Reference is a synthetic reference genome.
type Reference struct {
	// Name of the assembly.
	Name string
	// Seq is the forward-strand sequence.
	Seq seq.Seq
	// Profile used to generate it.
	Profile Profile
}

// Generate builds a synthetic reference of length n from the profile,
// deterministically for a given seed.
func Generate(p Profile, n int, seed int64) *Reference {
	rng := rand.New(rand.NewSource(seed))
	g := make(seq.Seq, 0, n)

	// Pre-build the interspersed repeat family.
	family := make([]seq.Seq, p.RepeatFamilies)
	for i := range family {
		family[i] = randomGC(rng, p.RepeatElementLen, p.GC)
	}

	// The profile fractions are base-pair coverage targets, so the
	// per-iteration draw probability of each segment type is weighted
	// by the inverse of its expected length.
	const (
		fragMeanLen   = 35.0
		tandemMeanLen = 171.0 // ~7 bp unit x ~24.5 copies
		bgMeanLen     = 600.0
	)
	wInter, wFrag := 0.0, 0.0
	if p.RepeatFamilies > 0 {
		wInter = p.InterspersedFraction / float64(p.RepeatElementLen)
		wFrag = p.FragmentFraction / fragMeanLen
	}
	wTandem := p.TandemRepeatFraction / tandemMeanLen
	bgFrac := 1 - p.InterspersedFraction - p.FragmentFraction - p.TandemRepeatFraction
	if bgFrac < 0.05 {
		bgFrac = 0.05
	}
	wBg := bgFrac / bgMeanLen
	wTotal := wInter + wFrag + wTandem + wBg

	for len(g) < n {
		r := rng.Float64() * wTotal
		switch {
		case r < wInter:
			// Insert a diverged copy of a repeat element.
			el := family[rng.Intn(len(family))]
			g = append(g, mutate(rng, el, p.RepeatDivergence)...)
		case r < wInter+wFrag:
			// Insert a short 5'-truncated fragment of a repeat element.
			// Like real LINE insertions, truncation removes the 5' end,
			// so every fragment of a family shares the element's 3'
			// tail — the region whose short seeds hit dozens of loci.
			el := family[rng.Intn(len(family))]
			l := 15 + rng.Intn(31)
			g = append(g, mutate(rng, el[len(el)-l:], p.RepeatDivergence)...)
		case r < wInter+wFrag+wTandem:
			// Insert a tandem repeat: unit of 2-12 bp repeated.
			unit := randomGC(rng, 2+rng.Intn(11), p.GC)
			copies := 5 + rng.Intn(40)
			for c := 0; c < copies && len(g) < n; c++ {
				g = append(g, unit...)
			}
		default:
			// Random background segment.
			g = append(g, randomGC(rng, 200+rng.Intn(800), p.GC)...)
		}
	}
	g = g[:n]
	return &Reference{Name: p.Name, Seq: g, Profile: p}
}

// randomGC draws n bases with the requested GC fraction.
func randomGC(rng *rand.Rand, n int, gc float64) seq.Seq {
	out := make(seq.Seq, n)
	for i := range out {
		if rng.Float64() < gc {
			out[i] = 1 + seq.Base(rng.Intn(2)) // C or G
		} else {
			out[i] = 3 * seq.Base(rng.Intn(2)) // A or T
		}
	}
	return out
}

// mutate returns a copy of s with each base substituted at rate p.
func mutate(rng *rand.Rand, s seq.Seq, p float64) seq.Seq {
	out := s.Clone()
	for i := range out {
		if rng.Float64() < p {
			out[i] = seq.Base((int(out[i]) + 1 + rng.Intn(3)) % 4)
		}
	}
	return out
}

// Read is a simulated sequencing read.
type Read struct {
	// ID is the read's index within its set.
	ID int
	// Name is the FASTQ-style identifier.
	Name string
	// Seq holds the 2-bit coded bases.
	Seq seq.Seq
	// Qual holds per-base Phred+33 qualities (same length as Seq).
	Qual []byte
	// TruePos is the 0-based reference position the read was sampled
	// from (forward strand coordinates), for accuracy checks.
	TruePos int
	// TrueRev reports whether the read was sampled from the reverse
	// complement strand.
	TrueRev bool
}

// SimulatorConfig controls the DWGSIM-like read simulator.
type SimulatorConfig struct {
	// ReadLen is the read length in bp (paper: 101 for short reads,
	// >=1000 for long reads).
	ReadLen int
	// SubRate is the per-base substitution error rate (Illumina ~1%).
	SubRate float64
	// InsRate and DelRate are per-base indel rates.
	InsRate float64
	DelRate float64
	// RevCompProb is the probability a read comes from the minus strand.
	RevCompProb float64
	// Seed makes the simulation reproducible.
	Seed int64
}

// ShortReadConfig mirrors NA12878/ERR194147: 101 bp Illumina-like reads.
func ShortReadConfig(seed int64) SimulatorConfig {
	return SimulatorConfig{ReadLen: 101, SubRate: 0.010, InsRate: 0.0002, DelRate: 0.0002, RevCompProb: 0.5, Seed: seed}
}

// LongReadConfig mirrors a 3rd-generation long-read set (>=1 kbp, higher
// error) used in Fig. 14's long-read experiment.
func LongReadConfig(seed int64) SimulatorConfig {
	return SimulatorConfig{ReadLen: 1000, SubRate: 0.05, InsRate: 0.02, DelRate: 0.02, RevCompProb: 0.5, Seed: seed}
}

// Simulate samples n reads from the reference under cfg.
func Simulate(ref *Reference, n int, cfg SimulatorConfig) []Read {
	if cfg.ReadLen <= 0 {
		panic("genome: SimulatorConfig.ReadLen must be positive")
	}
	if len(ref.Seq) < cfg.ReadLen+2 {
		panic(fmt.Sprintf("genome: reference (%d bp) shorter than read length %d", len(ref.Seq), cfg.ReadLen))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reads := make([]Read, n)
	for i := range reads {
		pos := rng.Intn(len(ref.Seq) - cfg.ReadLen - 1)
		frag := ref.Seq[pos : pos+cfg.ReadLen+1] // +1 slack for deletions
		rev := rng.Float64() < cfg.RevCompProb
		base := frag.Clone()
		if rev {
			base = frag.RevComp()
		}
		r := applyErrors(rng, base, cfg)
		qual := make([]byte, len(r))
		for q := range qual {
			qual[q] = byte('!' + 30 + rng.Intn(10)) // Q30-Q39
		}
		reads[i] = Read{
			ID:      i,
			Name:    fmt.Sprintf("%s_sim_%d_%d", ref.Name, pos, i),
			Seq:     r,
			Qual:    qual,
			TruePos: pos,
			TrueRev: rev,
		}
	}
	return reads
}

// applyErrors introduces substitutions and indels, returning exactly
// cfg.ReadLen bases.
func applyErrors(rng *rand.Rand, frag seq.Seq, cfg SimulatorConfig) seq.Seq {
	out := make(seq.Seq, 0, cfg.ReadLen)
	for i := 0; i < len(frag) && len(out) < cfg.ReadLen; i++ {
		r := rng.Float64()
		switch {
		case r < cfg.DelRate:
			// Skip this reference base.
		case r < cfg.DelRate+cfg.InsRate:
			out = append(out, seq.Base(rng.Intn(4)))
			if len(out) < cfg.ReadLen {
				out = append(out, frag[i])
			}
		case r < cfg.DelRate+cfg.InsRate+cfg.SubRate:
			out = append(out, seq.Base((int(frag[i])+1+rng.Intn(3))%4))
		default:
			out = append(out, frag[i])
		}
	}
	// Pad with random bases if deletions consumed the slack.
	for len(out) < cfg.ReadLen {
		out = append(out, seq.Base(rng.Intn(4)))
	}
	return out
}
