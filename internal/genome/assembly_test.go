package genome

import (
	"bytes"
	"strings"
	"testing"
)

func testAssembly(t *testing.T) *Assembly {
	t.Helper()
	a, err := GenerateAssembly(HumanLike(), []int{20000, 15000, 10000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAssemblyConcatAndTranslate(t *testing.T) {
	t.Parallel()
	a := testAssembly(t)
	if a.Len() != 45000 {
		t.Fatalf("len = %d", a.Len())
	}
	cases := []struct {
		pos   int
		chrom string
		local int
	}{
		{0, "H.sapiens-like_chr1", 0},
		{19999, "H.sapiens-like_chr1", 19999},
		{20000, "H.sapiens-like_chr2", 0},
		{34999, "H.sapiens-like_chr2", 14999},
		{35000, "H.sapiens-like_chr3", 0},
		{44999, "H.sapiens-like_chr3", 9999},
	}
	for _, c := range cases {
		chrom, local, err := a.Translate(c.pos)
		if err != nil {
			t.Fatal(err)
		}
		if chrom != c.chrom || local != c.local {
			t.Errorf("Translate(%d) = %s:%d, want %s:%d", c.pos, chrom, local, c.chrom, c.local)
		}
	}
	if _, _, err := a.Translate(45000); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, _, err := a.Translate(-1); err == nil {
		t.Error("negative position accepted")
	}
	// Translation must agree with the chromosome's own bases.
	chrom, local, _ := a.Translate(20005)
	if a.Concat()[20005] != a.Chroms[1].Seq[local] || chrom != a.Chroms[1].Name {
		t.Error("translated base mismatch")
	}
}

func TestAssemblySpans(t *testing.T) {
	t.Parallel()
	a := testAssembly(t)
	if a.Spans(100, 201) {
		t.Error("in-chromosome interval flagged as spanning")
	}
	if !a.Spans(19950, 20050) {
		t.Error("boundary-crossing interval not flagged")
	}
	if !a.Spans(-1, 5) || !a.Spans(44990, 45001) || !a.Spans(10, 10) {
		t.Error("degenerate intervals must span")
	}
}

func TestAssemblyOffset(t *testing.T) {
	t.Parallel()
	a := testAssembly(t)
	if off, err := a.Offset("H.sapiens-like_chr2"); err != nil || off != 20000 {
		t.Errorf("Offset = %d, %v", off, err)
	}
	if _, err := a.Offset("nope"); err == nil {
		t.Error("unknown chromosome accepted")
	}
}

func TestAssemblyFASTARoundTrip(t *testing.T) {
	t.Parallel()
	a := testAssembly(t)
	var buf bytes.Buffer
	if err := WriteAssemblyFASTA(&buf, a); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), ">"); got != 3 {
		t.Fatalf("%d records", got)
	}
	b, err := ReadAssemblyFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chroms) != 3 || !b.Concat().Equal(a.Concat()) {
		t.Error("assembly does not round trip")
	}
}

func TestAssemblyValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewAssembly(nil); err == nil {
		t.Error("empty assembly accepted")
	}
	r := Generate(HumanLike(), 100, 1)
	if _, err := NewAssembly([]*Reference{r, r}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := ReadAssemblyFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("headerless FASTA accepted")
	}
}

func TestSimulateAssemblyReadsStayInChromosomes(t *testing.T) {
	t.Parallel()
	a := testAssembly(t)
	cfg := ShortReadConfig(5)
	reads := SimulateAssembly(a, 300, cfg)
	for i, r := range reads {
		if a.Spans(r.TruePos, r.TruePos+cfg.ReadLen) {
			t.Fatalf("read %d spans a chromosome boundary at %d", i, r.TruePos)
		}
	}
}

func TestAssemblyEndToEndAlignment(t *testing.T) {
	t.Parallel()
	// Index the concatenation, align, translate results back — the
	// workflow nvwa-align uses for multi-FASTA references.
	a := testAssembly(t)
	reads := SimulateAssembly(a, 60, ShortReadConfig(7))
	// The pipeline package depends on genome, so exercise translation
	// with ground truth only here (pipeline-level coverage lives in
	// that package).
	for _, r := range reads {
		chrom, local, err := a.Translate(r.TruePos)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := a.Offset(chrom)
		if off+local != r.TruePos {
			t.Fatal("offset+local != concat position")
		}
	}
}
