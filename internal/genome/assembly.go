package genome

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"nvwa/internal/seq"
)

// Assembly is a multi-chromosome reference, the form real genomes take
// (the paper uses GRCh38 chromosomes 1-22, X, Y). Aligners index the
// concatenation and translate hit coordinates back to per-chromosome
// positions; Assembly provides both directions.
type Assembly struct {
	// Chroms are the member sequences in order.
	Chroms []*Reference
	// offsets[i] is the start of Chroms[i] in the concatenation.
	offsets []int
	concat  seq.Seq
}

// NewAssembly concatenates the chromosomes.
func NewAssembly(chroms []*Reference) (*Assembly, error) {
	if len(chroms) == 0 {
		return nil, fmt.Errorf("genome: empty assembly")
	}
	a := &Assembly{Chroms: chroms}
	names := map[string]bool{}
	for _, c := range chroms {
		if names[c.Name] {
			return nil, fmt.Errorf("genome: duplicate chromosome name %q", c.Name)
		}
		names[c.Name] = true
		a.offsets = append(a.offsets, len(a.concat))
		a.concat = append(a.concat, c.Seq...)
	}
	return a, nil
}

// GenerateAssembly synthesises n chromosomes of the given lengths from
// one profile (chromosome i is named <profile>_chr<i+1>).
func GenerateAssembly(p Profile, lengths []int, seed int64) (*Assembly, error) {
	var chroms []*Reference
	for i, l := range lengths {
		ref := Generate(p, l, seed+int64(i)*7919)
		ref.Name = fmt.Sprintf("%s_chr%d", p.Name, i+1)
		chroms = append(chroms, ref)
	}
	return NewAssembly(chroms)
}

// Concat returns the concatenated sequence the aligner indexes.
func (a *Assembly) Concat() seq.Seq { return a.concat }

// Len returns the total assembly length.
func (a *Assembly) Len() int { return len(a.concat) }

// Translate converts a concatenation coordinate to (chromosome name,
// local position). Positions beyond the assembly return an error.
func (a *Assembly) Translate(pos int) (string, int, error) {
	if pos < 0 || pos >= len(a.concat) {
		return "", 0, fmt.Errorf("genome: position %d outside assembly of %d bp", pos, len(a.concat))
	}
	i := sort.Search(len(a.offsets), func(i int) bool { return a.offsets[i] > pos }) - 1
	return a.Chroms[i].Name, pos - a.offsets[i], nil
}

// Spans reports whether the interval [beg, end) crosses a chromosome
// boundary — alignments doing so are concatenation artifacts and must
// be filtered, exactly like junction hits in the FMD index.
func (a *Assembly) Spans(beg, end int) bool {
	if beg < 0 || end > len(a.concat) || beg >= end {
		return true
	}
	c1, _, err1 := a.Translate(beg)
	c2, _, err2 := a.Translate(end - 1)
	return err1 != nil || err2 != nil || c1 != c2
}

// Offset returns the concatenation start of the named chromosome.
func (a *Assembly) Offset(name string) (int, error) {
	for i, c := range a.Chroms {
		if c.Name == name {
			return a.offsets[i], nil
		}
	}
	return 0, fmt.Errorf("genome: unknown chromosome %q", name)
}

// WriteAssemblyFASTA writes every chromosome as its own FASTA record.
func WriteAssemblyFASTA(w io.Writer, a *Assembly) error {
	bw := bufio.NewWriter(w)
	for _, c := range a.Chroms {
		if err := WriteFASTA(bw, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssemblyFASTA parses every record of a multi-FASTA stream.
func ReadAssemblyFASTA(r io.Reader) (*Assembly, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var chroms []*Reference
	var name string
	var sb strings.Builder
	flush := func() {
		if name != "" {
			chroms = append(chroms, &Reference{Name: name, Seq: seq.Encode(sb.String())})
		}
		sb.Reset()
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			name = firstField(line[1:])
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("genome: FASTA data before first header")
		}
		sb.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(chroms) == 0 {
		return nil, fmt.Errorf("genome: no FASTA records")
	}
	return NewAssembly(chroms)
}

// SimulateAssembly samples reads across all chromosomes proportionally
// to their lengths; TruePos is in concatenation coordinates (use
// Translate for per-chromosome truth).
func SimulateAssembly(a *Assembly, n int, cfg SimulatorConfig) []Read {
	whole := &Reference{Name: "assembly", Seq: a.concat}
	reads := Simulate(whole, n, cfg)
	// Drop reads spanning a chromosome boundary by resampling nearby.
	for i := range reads {
		if a.Spans(reads[i].TruePos, reads[i].TruePos+cfg.ReadLen) {
			// Shift into the chromosome the read starts in.
			name, off, err := a.Translate(reads[i].TruePos)
			if err != nil {
				continue
			}
			start, _ := a.Offset(name)
			chromLen := 0
			for _, c := range a.Chroms {
				if c.Name == name {
					chromLen = len(c.Seq)
				}
			}
			newPos := start + chromLen - cfg.ReadLen - 1
			if newPos < start {
				continue
			}
			_ = off
			reads[i].TruePos = newPos
			frag := a.concat[newPos : newPos+cfg.ReadLen]
			if reads[i].TrueRev {
				reads[i].Seq = frag.RevComp()
			} else {
				reads[i].Seq = frag.Clone()
			}
		}
	}
	return reads
}
