package genome

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"nvwa/internal/seq"
)

// WriteFASTA writes the reference in FASTA format with 70-column lines.
func WriteFASTA(w io.Writer, ref *Reference) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, ">%s\n", ref.Name); err != nil {
		return err
	}
	s := ref.Seq.String()
	for i := 0; i < len(s); i += 70 {
		end := i + 70
		if end > len(s) {
			end = len(s)
		}
		if _, err := fmt.Fprintln(bw, s[i:end]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFASTA parses the first record of a FASTA stream.
func ReadFASTA(r io.Reader) (*Reference, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var name string
	var sb strings.Builder
	seen := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			if seen {
				break // only the first record
			}
			name = firstField(line[1:])
			seen = true
			continue
		}
		if !seen {
			return nil, fmt.Errorf("genome: FASTA sequence data before header")
		}
		sb.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seen {
		return nil, fmt.Errorf("genome: no FASTA record found")
	}
	return &Reference{Name: name, Seq: seq.Encode(sb.String())}, nil
}

// WriteFASTQ writes reads in 4-line FASTQ format.
func WriteFASTQ(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for _, r := range reads {
		qual := r.Qual
		if len(qual) == 0 {
			qual = defaultQual(len(r.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.Name, r.Seq.String(), qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// firstField returns the first whitespace-separated token of s, or
// "unnamed" when the header carries no name at all.
func firstField(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return "unnamed"
	}
	return f[0]
}

func defaultQual(n int) []byte {
	q := make([]byte, n)
	for i := range q {
		q[i] = 'I'
	}
	return q
}

// ReadFASTQ parses all records of a FASTQ stream.
func ReadFASTQ(r io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var reads []Read
	for sc.Scan() {
		header := strings.TrimSpace(sc.Text())
		if header == "" {
			continue
		}
		if !strings.HasPrefix(header, "@") {
			return nil, fmt.Errorf("genome: FASTQ record %d: header %q does not start with '@'", len(reads), header)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("genome: FASTQ record %d: truncated after header", len(reads))
		}
		bases := strings.TrimSpace(sc.Text())
		if !sc.Scan() {
			return nil, fmt.Errorf("genome: FASTQ record %d: missing separator line", len(reads))
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("genome: FASTQ record %d: missing quality line", len(reads))
		}
		qual := strings.TrimSpace(sc.Text())
		if len(qual) != len(bases) {
			return nil, fmt.Errorf("genome: FASTQ record %d: quality length %d != sequence length %d", len(reads), len(qual), len(bases))
		}
		reads = append(reads, Read{
			ID:   len(reads),
			Name: firstField(header[1:]),
			Seq:  seq.Encode(bases),
			Qual: []byte(qual),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reads, nil
}
