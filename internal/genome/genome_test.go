package genome

import (
	"math"
	"testing"

	"nvwa/internal/seq"
)

func TestGenerateLengthAndDeterminism(t *testing.T) {
	t.Parallel()
	p := HumanLike()
	a := Generate(p, 10000, 42)
	b := Generate(p, 10000, 42)
	if len(a.Seq) != 10000 {
		t.Fatalf("length = %d, want 10000", len(a.Seq))
	}
	if !a.Seq.Equal(b.Seq) {
		t.Fatal("same seed must produce identical references")
	}
	c := Generate(p, 10000, 43)
	if a.Seq.Equal(c.Seq) {
		t.Fatal("different seeds should produce different references")
	}
}

func TestGenerateGCApproximatesProfile(t *testing.T) {
	t.Parallel()
	p := HumanLike()
	ref := Generate(p, 200000, 1)
	gc := seq.GC(ref.Seq)
	if math.Abs(gc-p.GC) > 0.06 {
		t.Errorf("GC = %.3f, want within 0.06 of %.3f", gc, p.GC)
	}
}

func TestGenerateHasRepeats(t *testing.T) {
	t.Parallel()
	// A genome with interspersed repeats must contain some k-mer many
	// times; a uniform random genome of this size essentially never
	// repeats a 16-mer 10 times.
	ref := Generate(HumanLike(), 100000, 7)
	counts := map[string]int{}
	k := 16
	for i := 0; i+k <= len(ref.Seq); i++ {
		counts[ref.Seq[i:i+k].String()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Errorf("max 16-mer multiplicity = %d, want >= 10 (repeat structure missing)", max)
	}
}

func TestSimulateBasicProperties(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 50000, 3)
	cfg := ShortReadConfig(9)
	reads := Simulate(ref, 200, cfg)
	if len(reads) != 200 {
		t.Fatalf("got %d reads", len(reads))
	}
	for i, r := range reads {
		if r.ID != i {
			t.Fatalf("read %d has ID %d", i, r.ID)
		}
		if len(r.Seq) != cfg.ReadLen {
			t.Fatalf("read %d length %d, want %d", i, len(r.Seq), cfg.ReadLen)
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatalf("read %d qual length mismatch", i)
		}
		if r.TruePos < 0 || r.TruePos+cfg.ReadLen > len(ref.Seq) {
			t.Fatalf("read %d TruePos %d out of range", i, r.TruePos)
		}
	}
}

func TestSimulateErrorRate(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 100000, 5)
	cfg := SimulatorConfig{ReadLen: 101, SubRate: 0.01, RevCompProb: 0, Seed: 11}
	reads := Simulate(ref, 500, cfg)
	mismatches, total := 0, 0
	for _, r := range reads {
		frag := ref.Seq[r.TruePos : r.TruePos+cfg.ReadLen]
		for i := range r.Seq {
			total++
			if r.Seq[i] != frag[i] {
				mismatches++
			}
		}
	}
	rate := float64(mismatches) / float64(total)
	if rate < 0.005 || rate > 0.02 {
		t.Errorf("observed substitution rate %.4f, want near 0.01", rate)
	}
}

func TestSimulateStrandMix(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 50000, 3)
	reads := Simulate(ref, 400, ShortReadConfig(21))
	rev := 0
	for _, r := range reads {
		if r.TrueRev {
			rev++
		}
	}
	if rev < 120 || rev > 280 {
		t.Errorf("reverse-strand reads = %d/400, want roughly half", rev)
	}
}

func TestSimulatePanicsOnBadConfig(t *testing.T) {
	t.Parallel()
	ref := Generate(HumanLike(), 1000, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero read length")
		}
	}()
	Simulate(ref, 1, SimulatorConfig{})
}

func TestLongReadConfig(t *testing.T) {
	t.Parallel()
	ref := Generate(ElegansLike, 50000, 4)
	reads := Simulate(ref, 10, LongReadConfig(2))
	for _, r := range reads {
		if len(r.Seq) != 1000 {
			t.Fatalf("long read length %d", len(r.Seq))
		}
	}
}
