package baselines

import (
	"math"
	"testing"
)

func TestPlatformsConsistency(t *testing.T) {
	ps := Platforms()
	if len(ps) != 7 {
		t.Fatalf("got %d platforms", len(ps))
	}
	var nvwa, cpu, genax, susEus *Platform
	for i := range ps {
		switch ps[i].Kind {
		case "this work":
			nvwa = &ps[i]
		}
		switch {
		case ps[i].Name == "BWA-MEM (16-thread CPU)":
			cpu = &ps[i]
		case ps[i].Name == "GenAx (ASIC)":
			genax = &ps[i]
		case ps[i].Name == "SUs+EUs (no scheduling)":
			susEus = &ps[i]
		}
	}
	if nvwa == nil || cpu == nil || genax == nil || susEus == nil {
		t.Fatal("missing platforms")
	}
	if nvwa.ThroughputKReads != NvWaReportedKReads {
		t.Error("NvWa throughput mismatch")
	}
	// Speedup ratios must be self-consistent.
	if r := nvwa.ThroughputKReads / cpu.ThroughputKReads; math.Abs(r-493) > 0.5 {
		t.Errorf("CPU speedup = %v", r)
	}
	// SUs+EUs is 88.79% of GenAx (Sec. V-C).
	if r := susEus.ThroughputKReads / genax.ThroughputKReads; math.Abs(r-0.8879) > 1e-6 {
		t.Errorf("SUs+EUs/GenAx = %v", r)
	}
	// The paper's cross-check: SUs+EUs is also ~16.93% of GenCache.
	var gencache *Platform
	for i := range ps {
		if ps[i].Name == "GenCache (PIM)" {
			gencache = &ps[i]
		}
	}
	if r := susEus.ThroughputKReads / gencache.ThroughputKReads; math.Abs(r-0.1693) > 0.002 {
		t.Errorf("SUs+EUs/GenCache = %v, want ~0.1693", r)
	}
}

func TestAblationSpeedupsComposeToTotal(t *testing.T) {
	// The paper's three per-mechanism speedups multiply to roughly the
	// total improvement over SUs+EUs (12.11/0.8879 = 13.64).
	ab := AblationSpeedups()
	product := 1.0
	for _, v := range ab {
		product *= v
	}
	total := 12.11 / 0.8879
	if math.Abs(product-total)/total > 0.02 {
		t.Errorf("ablation product %.3f vs total %.3f", product, total)
	}
}

func TestThroughputPerWatt(t *testing.T) {
	tw := ThroughputPerWatt()
	if tw["GenAx"] != 52.62 || tw["GenCache"] != 13.50 {
		t.Error("throughput/W constants wrong")
	}
	if ComparisonPowerW >= 5.754 {
		t.Error("comparison power must exclude the SPM/SRAM components")
	}
}
