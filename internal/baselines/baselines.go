// Package baselines embeds the comparison platforms of the paper's
// Fig. 11 and Table II energy discussion. The paper itself evaluates
// GenAx, GenCache, SeedEx, and ERT "using data reported by the
// original work" (Sec. V-B); this package follows the same
// methodology, deriving each platform's absolute throughput from the
// paper's reported NvWa throughput (49,150 Kreads/s) and speedup
// ratios. The simulated systems (NvWa, SUs+EUs) are measured by
// package accel; these constants contextualise them.
package baselines

// Platform is one comparison point.
type Platform struct {
	// Name of the system.
	Name string
	// Kind is the hardware category (CPU/GPU/FPGA/ASIC/PIM/this work).
	Kind string
	// ThroughputKReads is reads/sec in thousands on NA12878.
	ThroughputKReads float64
	// PaperSpeedup is NvWa's reported speedup over this platform
	// (1.0 for NvWa itself).
	PaperSpeedup float64
	// PaperEnergyReduction is NvWa's reported energy reduction
	// (0 when the paper does not report one).
	PaperEnergyReduction float64
	// Reported marks values quoted from the paper rather than
	// simulated in this repository.
	Reported bool
}

// NvWaReportedKReads is the paper's NvWa throughput in Kreads/s.
const NvWaReportedKReads = 49150.0

// Platforms returns the Fig. 11 comparison set.
func Platforms() []Platform {
	return []Platform{
		{Name: "BWA-MEM (16-thread CPU)", Kind: "CPU", ThroughputKReads: NvWaReportedKReads / 493, PaperSpeedup: 493, PaperEnergyReduction: 14.21, Reported: true},
		{Name: "GASAL2 (A100 GPU)", Kind: "GPU", ThroughputKReads: NvWaReportedKReads / 200, PaperSpeedup: 200, PaperEnergyReduction: 5.60, Reported: true},
		{Name: "ERT+SeedEx (FPGA)", Kind: "FPGA", ThroughputKReads: NvWaReportedKReads / 151, PaperSpeedup: 151, Reported: true},
		{Name: "GenAx (ASIC)", Kind: "ASIC", ThroughputKReads: NvWaReportedKReads / 12.11, PaperSpeedup: 12.11, PaperEnergyReduction: 4.34, Reported: true},
		{Name: "GenCache (PIM)", Kind: "PIM", ThroughputKReads: NvWaReportedKReads / 2.30, PaperSpeedup: 2.30, PaperEnergyReduction: 5.85, Reported: true},
		{Name: "SUs+EUs (no scheduling)", Kind: "ASIC", ThroughputKReads: NvWaReportedKReads / 12.11 * 0.8879, PaperSpeedup: 12.11 / 0.8879, Reported: true},
		{Name: "NvWa", Kind: "this work", ThroughputKReads: NvWaReportedKReads, PaperSpeedup: 1, Reported: true},
	}
}

// AblationSpeedups returns the per-mechanism speedups the paper
// attributes to each scheduler (Fig. 11 caption / Sec. V-C).
func AblationSpeedups() map[string]float64 {
	return map[string]float64{
		"Hybrid Units Strategy":    3.32,
		"One-Cycle Read Allocator": 1.73,
		"Hits Allocator":           2.38,
	}
}

// ThroughputPerWatt returns the paper's efficiency claims: NvWa's
// throughput/W advantage over GenAx and GenCache.
func ThroughputPerWatt() map[string]float64 {
	return map[string]float64{
		"GenAx":    52.62,
		"GenCache": 13.50,
	}
}

// ComparisonPowerW is the NvWa power the paper uses when comparing
// against accelerators that exclude memory energy (Sec. V-C fn. 6).
const ComparisonPowerW = 5.693
