package minimizer

import (
	"math/rand"
	"testing"

	"nvwa/internal/genome"
	"nvwa/internal/seq"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func TestMinimizersWindowGuarantee(t *testing.T) {
	// Every w-window of k-mers must contain at least one selected
	// minimizer (the defining property of the sketch).
	rng := rand.New(rand.NewSource(1))
	w, k := 10, 15
	s := randSeq(rng, 2000)
	ms, err := Minimizers(s, w, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no minimizers")
	}
	selected := map[int]bool{}
	for _, m := range ms {
		selected[m.Pos] = true
		if m.Pos < 0 || m.Pos+k > len(s) {
			t.Fatalf("minimizer out of range: %+v", m)
		}
	}
	for win := 0; win+w+k-1 <= len(s); win++ {
		ok := false
		for p := win; p < win+w; p++ {
			if selected[p] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("window starting at %d has no minimizer", win)
		}
	}
}

func TestMinimizersDensity(t *testing.T) {
	// Expected density is ~2/(w+1); allow generous bounds.
	rng := rand.New(rand.NewSource(2))
	w, k := 10, 15
	s := randSeq(rng, 20000)
	ms, _ := Minimizers(s, w, k)
	density := float64(len(ms)) / float64(len(s))
	if density < 1.0/(2*float64(w)) || density > 4.0/float64(w) {
		t.Errorf("density = %.4f, expected near %.4f", density, 2.0/float64(w+1))
	}
}

func TestMinimizersStrandCanonical(t *testing.T) {
	// A sequence and its reverse complement share the same canonical
	// minimizer hashes.
	rng := rand.New(rand.NewSource(3))
	s := seq.Seq(randSeq(rng, 500))
	rc := s.RevComp()
	a, _ := Minimizers(s, 5, 15)
	b, _ := Minimizers(rc, 5, 15)
	setA := map[uint64]bool{}
	for _, m := range a {
		setA[m.Hash] = true
	}
	common := 0
	for _, m := range b {
		if setA[m.Hash] {
			common++
		}
	}
	if common < len(b)*7/10 {
		t.Errorf("only %d/%d reverse-complement minimizers shared", common, len(b))
	}
}

func TestMinimizersValidation(t *testing.T) {
	if _, err := Minimizers([]byte{0}, 5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Minimizers([]byte{0}, 0, 15); err == nil {
		t.Error("w=0 accepted")
	}
	if ms, err := Minimizers([]byte{0, 1}, 5, 15); err != nil || ms != nil {
		t.Error("short sequence should return nil, nil")
	}
}

func TestIndexQueryFindsTrueLocus(t *testing.T) {
	ref := genome.Generate(genome.HumanLike(), 60000, 4)
	idx, err := NewIndex(ref.Seq, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Sketched() == 0 {
		t.Fatal("empty index")
	}
	reads := genome.Simulate(ref, 30, genome.LongReadConfig(5))
	found := 0
	for _, r := range reads {
		hits, err := idx.Query(r.Seq, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			if !h.Rev == !r.TrueRev && abs(h.RefPos-h.ReadPos-r.TruePos) < 200 {
				found++
				break
			}
			if h.Rev != !r.TrueRev && h.Rev && abs(h.RefPos-(r.TruePos+len(r.Seq)-h.ReadPos)) < 1200 {
				// reverse-strand anchors: coarse locality check
				found++
				break
			}
		}
	}
	if found < 24 {
		t.Errorf("anchors found the true locus for only %d/30 long reads", found)
	}
}

func TestChainHitsRecoversColinearRun(t *testing.T) {
	// Construct anchors: a colinear run plus random noise; the top
	// chain must be the run.
	rng := rand.New(rand.NewSource(6))
	var hits []Hit
	for i := 0; i < 20; i++ {
		hits = append(hits, Hit{ReadPos: 100 + i*50, RefPos: 5000 + i*50 + rng.Intn(5)})
	}
	for i := 0; i < 30; i++ {
		hits = append(hits, Hit{ReadPos: rng.Intn(1000), RefPos: rng.Intn(100000)})
	}
	chains := ChainHits(hits, 500)
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	top := chains[0]
	if len(top.Hits) < 15 {
		t.Fatalf("top chain has %d anchors, want the 20-anchor run", len(top.Hits))
	}
	for i := 1; i < len(top.Hits); i++ {
		if top.Hits[i].ReadPos <= top.Hits[i-1].ReadPos || top.Hits[i].RefPos <= top.Hits[i-1].RefPos {
			t.Fatal("top chain not colinear")
		}
	}
}

func TestChainHitsStrandSeparation(t *testing.T) {
	hits := []Hit{
		{ReadPos: 10, RefPos: 100}, {ReadPos: 20, RefPos: 110},
		{ReadPos: 30, RefPos: 200, Rev: true}, {ReadPos: 40, RefPos: 210, Rev: true},
	}
	chains := ChainHits(hits, 100)
	for _, c := range chains {
		rev := c.Hits[0].Rev
		for _, h := range c.Hits {
			if h.Rev != rev {
				t.Fatal("chain mixes strands")
			}
		}
	}
	if ChainHits(nil, 100) != nil {
		t.Error("empty input should chain to nil")
	}
}

func TestLongReadEndToEndSketchChain(t *testing.T) {
	// The seed-and-chain-then-fill front end on a simulated long read:
	// sketch, query, chain — the best chain's diagonal must sit at the
	// read's true locus.
	ref := genome.Generate(genome.HumanLike(), 80000, 7)
	idx, _ := NewIndex(ref.Seq, 10, 15)
	reads := genome.Simulate(ref, 20, genome.LongReadConfig(8))
	good := 0
	for _, r := range reads {
		q := seq.Seq(r.Seq)
		if r.TrueRev {
			// Query with the oriented read so forward chains dominate.
			q = q.RevComp()
		}
		hits, _ := idx.Query(q, 64)
		chains := ChainHits(hits, 2000)
		if len(chains) == 0 {
			continue
		}
		top := chains[0]
		d := top.Hits[0].RefPos - top.Hits[0].ReadPos
		if abs(d-r.TruePos) < 100 {
			good++
		}
	}
	if good < 15 {
		t.Errorf("top chain at true locus for only %d/20 long reads", good)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
