// Package minimizer implements (w,k)-minimizer sketching, the seeding
// structure of the 3rd-generation long-read aligners (minimap2) the
// paper's Sec. VI discusses: NvWa's unified interface is meant to host
// such seed-and-chain-then-fill pipelines unchanged. The package
// provides canonical minimizer extraction, a position index, and the
// colinear anchor chaining those aligners use.
package minimizer

import (
	"fmt"
	"sort"
)

// Anchor is one minimizer occurrence.
type Anchor struct {
	// Pos is the k-mer's start position in its sequence.
	Pos int
	// Hash is the minimizer's hashed canonical k-mer value.
	Hash uint64
	// Rev marks that the canonical form is the reverse complement.
	Rev bool
}

// hash64 is the invertible finaliser minimap2 uses (Thomas Wang).
func hash64(key, mask uint64) uint64 {
	key = (^key + (key << 21)) & mask
	key = key ^ key>>24
	key = (key + (key << 3) + (key << 8)) & mask
	key = key ^ key>>14
	key = (key + (key << 2) + (key << 4)) & mask
	key = key ^ key>>28
	key = (key + (key << 31)) & mask
	return key
}

// Minimizers returns the (w,k)-minimizers of s: for every window of w
// consecutive k-mers, the k-mer with the smallest hashed canonical
// value (ties keep all distinct positions, as minimap2 does).
func Minimizers(s []byte, w, k int) ([]Anchor, error) {
	if k < 1 || k > 28 {
		return nil, fmt.Errorf("minimizer: k=%d out of [1,28]", k)
	}
	if w < 1 {
		return nil, fmt.Errorf("minimizer: w=%d out of range", w)
	}
	n := len(s)
	if n < k {
		return nil, nil
	}
	mask := uint64(1)<<(2*k) - 1
	shift := uint64(2 * (k - 1))

	type kmer struct {
		hash uint64
		pos  int
		rev  bool
	}
	kmers := make([]kmer, 0, n-k+1)
	var fwd, rev uint64
	for i := 0; i < n; i++ {
		c := uint64(s[i] & 3)
		fwd = ((fwd << 2) | c) & mask
		rev = (rev >> 2) | ((3 - c) << shift)
		if i < k-1 {
			continue
		}
		// Canonical form: the smaller of the k-mer and its revcomp;
		// palindromic k-mers are skipped (strand-ambiguous), like
		// minimap2.
		switch {
		case fwd < rev:
			kmers = append(kmers, kmer{hash64(fwd, mask), i - k + 1, false})
		case rev < fwd:
			kmers = append(kmers, kmer{hash64(rev, mask), i - k + 1, true})
		default:
			kmers = append(kmers, kmer{^uint64(0), i - k + 1, false}) // never selected
		}
	}

	var out []Anchor
	lastPos := -1
	for win := 0; win+w <= len(kmers); win++ {
		best := win
		for j := win + 1; j < win+w; j++ {
			if kmers[j].hash < kmers[best].hash {
				best = j
			}
		}
		if kmers[best].hash == ^uint64(0) {
			continue
		}
		if kmers[best].pos != lastPos {
			out = append(out, Anchor{Pos: kmers[best].pos, Hash: kmers[best].hash, Rev: kmers[best].rev})
			lastPos = kmers[best].pos
		}
	}
	return out, nil
}

// Index maps minimizer hashes to reference anchors.
type Index struct {
	w, k    int
	entries map[uint64][]Anchor
	textLen int
}

// NewIndex sketches the reference.
func NewIndex(ref []byte, w, k int) (*Index, error) {
	ms, err := Minimizers(ref, w, k)
	if err != nil {
		return nil, err
	}
	idx := &Index{w: w, k: k, entries: make(map[uint64][]Anchor), textLen: len(ref)}
	for _, m := range ms {
		idx.entries[m.Hash] = append(idx.entries[m.Hash], m)
	}
	return idx, nil
}

// Sketched returns the number of distinct minimizers indexed.
func (x *Index) Sketched() int { return len(x.entries) }

// Hit pairs a read anchor with a reference anchor of the same
// minimizer.
type Hit struct {
	ReadPos, RefPos int
	// Rev marks opposite-strand pairing.
	Rev bool
}

// Query sketches the read and returns all matching anchor pairs,
// skipping minimizers with more than maxOcc reference occurrences.
func (x *Index) Query(read []byte, maxOcc int) ([]Hit, error) {
	ms, err := Minimizers(read, x.w, x.k)
	if err != nil {
		return nil, err
	}
	var out []Hit
	for _, m := range ms {
		refs := x.entries[m.Hash]
		if maxOcc > 0 && len(refs) > maxOcc {
			continue
		}
		for _, r := range refs {
			out = append(out, Hit{ReadPos: m.Pos, RefPos: r.Pos, Rev: m.Rev != r.Rev})
		}
	}
	return out, nil
}

// Chain is a colinear anchor chain.
type Chain struct {
	// Hits are the chained anchors in read order.
	Hits []Hit
	// Score is the chaining score (anchors minus gap penalties).
	Score int
}

// ChainHits performs minimap2-style colinear chaining with O(n^2) DP:
// anchors must increase in both read and reference coordinate (same
// strand), and diagonal drift is penalised. maxGap bounds the distance
// between chained anchors.
func ChainHits(hits []Hit, maxGap int) []Chain {
	if len(hits) == 0 {
		return nil
	}
	// Separate strands, sort by (refPos, readPos).
	var chains []Chain
	for _, rev := range []bool{false, true} {
		var hs []Hit
		for _, h := range hits {
			if h.Rev == rev {
				hs = append(hs, h)
			}
		}
		if len(hs) == 0 {
			continue
		}
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].RefPos != hs[j].RefPos {
				return hs[i].RefPos < hs[j].RefPos
			}
			return hs[i].ReadPos < hs[j].ReadPos
		})
		score := make([]int, len(hs))
		parent := make([]int, len(hs))
		for i := range hs {
			score[i] = 1
			parent[i] = -1
			for j := i - 1; j >= 0; j-- {
				dr := hs[i].RefPos - hs[j].RefPos
				dq := hs[i].ReadPos - hs[j].ReadPos
				if dr <= 0 || dq <= 0 || dr > maxGap || dq > maxGap {
					continue
				}
				drift := dr - dq
				if drift < 0 {
					drift = -drift
				}
				s := score[j] + 1 - drift/16
				if s > score[i] {
					score[i] = s
					parent[i] = j
				}
			}
		}
		// Extract the best chain per connected run (greedy: best first,
		// mark used, repeat).
		used := make([]bool, len(hs))
		for {
			best, bestScore := -1, 1
			for i := range hs {
				if !used[i] && score[i] > bestScore {
					best, bestScore = i, score[i]
				}
			}
			if best == -1 {
				break
			}
			var path []Hit
			for i := best; i != -1; i = parent[i] {
				if used[i] {
					break
				}
				used[i] = true
				path = append(path, hs[i])
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			chains = append(chains, Chain{Hits: path, Score: bestScore})
		}
	}
	sort.SliceStable(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	return chains
}
