package nvwa_test

import (
	"testing"

	"nvwa"
)

func TestPublicAPIQuickstart(t *testing.T) {
	ref := nvwa.GenerateReference(nvwa.HumanLikeProfile(), 50000, 1)
	aligner := nvwa.NewAligner(ref)
	reads := nvwa.SimulateReads(ref, 100, nvwa.ShortReads(2))

	// Software path.
	found := 0
	for i, r := range reads {
		if aligner.Align(i, r.Seq).Found {
			found++
		}
	}
	if found < 90 {
		t.Errorf("software pipeline aligned only %d/100", found)
	}

	// Accelerator path with a derived pool.
	opts, err := nvwa.DerivedOptions(aligner, nvwa.Sequences(reads))
	if err != nil {
		t.Fatal(err)
	}
	opts.Config.NumSUs = 16 // scale down for test speed
	acc, err := nvwa.NewAccelerator(aligner, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := acc.Run(nvwa.Sequences(reads))
	if rep.Reads != 100 || rep.ThroughputReadsPerSec <= 0 {
		t.Fatalf("bad report: %+v", rep.Reads)
	}
	// Accelerator results must equal the software pipeline's.
	for i, r := range reads {
		want := aligner.Align(i, r.Seq)
		if rep.Results[i].Found != want.Found || (want.Found && rep.Results[i].Score != want.Score) {
			t.Fatalf("read %d: accelerator diverges from software", i)
		}
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	cfg := nvwa.DefaultConfig()
	if cfg.TotalPEs() != 2880 || cfg.TotalEUs() != 70 {
		t.Error("Table I config wrong")
	}
	if nvwa.BaselineOptions().Config.EUClasses[0].PEs != 64 {
		t.Error("baseline pool should be uniform 64-PE")
	}
	if s := nvwa.EncodeSequence("ACGT"); len(s) != 4 || s[3] != 3 {
		t.Error("EncodeSequence wrong")
	}
	if nvwa.LongReads(1).ReadLen < 1000 {
		t.Error("long reads should be >= 1 kbp")
	}
	if nvwa.ShortReads(1).ReadLen != 101 {
		t.Error("short reads should be 101 bp (NA12878)")
	}
}

func TestPublicAPILongReads(t *testing.T) {
	ref := nvwa.GenerateReference(nvwa.HumanLikeProfile(), 60000, 11)
	l, err := nvwa.NewLongReadAligner(ref, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	reads := nvwa.SimulateReads(ref, 20, nvwa.LongReads(12))
	mapped := 0
	for _, r := range reads {
		if l.Align(r.Seq).Found {
			mapped++
		}
	}
	if mapped < 17 {
		t.Errorf("long-read facade mapped only %d/20", mapped)
	}
}
